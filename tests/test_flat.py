"""PLDSFlat: the flat slot-indexed layout is observationally bit-identical.

The contract (docs/cost_model.md, "Flat-layout memory model"): on any
update stream and at any parameterization, :class:`repro.core.plds_flat.
PLDSFlat` produces the same coreness estimates AND the same metered
(work, depth) totals as the record-based :class:`repro.core.plds.PLDS`
— the layout change is purely a constant-factor/wall-clock matter.
These tests drive both engines through the golden-parity stream across
the structure/strategy matrix, and additionally check agreement with
the sharded coordinator at 1/2/4/7 shards (which is itself gated
bit-identical to the record engine by tests/test_shard.py).
"""

from __future__ import annotations

import pytest

from repro.core.plds import PLDS
from repro.core.plds_flat import PLDSFlat
from repro.registry import make_adapter
from repro.shard import Coordinator

from .test_golden_parity import _N_HINT, _stream

#: constructor kwargs per scenario; both engines take identical params.
CONFIGS: dict[str, dict] = {
    "levelwise": {},
    "jump": {"insertion_strategy": "jump"},
    "opt": {"group_shrink": 50, "insertion_strategy": "jump"},
    "opt-levelwise": {"group_shrink": 50},
    "orient-det": {"track_orientation": True, "structure": "deterministic"},
    "space": {"structure": "space_efficient"},
}


def _run_pair(n_hint: int, **kwargs) -> tuple[PLDS, PLDSFlat]:
    rec = PLDS(n_hint=n_hint, **kwargs)
    flat = PLDSFlat(n_hint=n_hint, **kwargs)
    for batch in _stream():
        rec.update(batch)
        flat.update(batch)
        assert (rec.tracker.work, rec.tracker.depth) == (
            flat.tracker.work,
            flat.tracker.depth,
        ), "metered totals diverged mid-stream"
    return rec, flat


class TestFlatParity:
    @pytest.mark.parametrize("config", sorted(CONFIGS))
    def test_bit_identical_to_plds(self, config: str) -> None:
        rec, flat = _run_pair(_N_HINT, **CONFIGS[config])
        assert flat.coreness_estimates() == rec.coreness_estimates()
        assert {v: flat.level(v) for v in flat.vertices()} == {
            v: rec.level(v) for v in rec.vertices()
        }
        assert flat.check_invariants() == []

    def test_rebuild_parity(self) -> None:
        # An undersized hint forces mid-stream rebuilds through the flat
        # slot recycling path.
        rec, flat = _run_pair(32)
        assert flat.coreness_estimates() == rec.coreness_estimates()
        assert flat.check_invariants() == []

    def test_query_surface_matches(self) -> None:
        rec, flat = _run_pair(_N_HINT)
        assert flat.num_vertices == rec.num_vertices
        assert sorted(flat.edges()) == sorted(rec.edges())
        for v in rec.vertices():
            assert flat.degree(v) == rec.degree(v)
            assert flat.up_degree(v) == rec.up_degree(v)
            assert flat.up_star_degree(v) == rec.up_star_degree(v)
            assert flat.neighbors(v) == rec.neighbors(v)
            assert flat.out_neighbors(v) == rec.out_neighbors(v)
            assert flat.out_degree(v) == rec.out_degree(v)
            assert flat.in_neighbors(v) == rec.in_neighbors(v)
        for u, v in list(rec.edges())[:50]:
            assert flat.has_edge(u, v) and flat.has_edge(v, u)
        assert not flat.has_edge(10**6, 0)

    def test_snapshot_roundtrip(self) -> None:
        _, flat = _run_pair(_N_HINT)
        clone = PLDSFlat.from_snapshot(flat.to_snapshot())
        assert clone.coreness_estimates() == flat.coreness_estimates()
        assert sorted(clone.edges()) == sorted(flat.edges())
        assert clone.check_invariants() == []

    def test_vertex_deletion_compacts_slots(self) -> None:
        flat = PLDSFlat(n_hint=_N_HINT)
        rec = PLDS(n_hint=_N_HINT)
        batches = _stream()
        for b in batches[:4]:
            flat.update(b)
            rec.update(b)
        victims = sorted(flat.vertices())[::7]
        flat.delete_vertices(victims)
        rec.delete_vertices(victims)
        assert flat.coreness_estimates() == rec.coreness_estimates()
        assert flat.check_invariants() == []
        # Slots stay dense after the swap-compaction.
        assert sorted(flat._slot_of.values()) == list(range(flat.num_vertices))

    def test_level_bytes_is_contiguous_int32_image(self) -> None:
        _, flat = _run_pair(_N_HINT)
        image = flat._level_bytes()
        assert len(image) == 4 * flat.num_vertices
        from array import array

        levels = array("i")
        levels.frombytes(image)
        assert list(levels) == flat._lv

    def test_space_accounting_positive(self) -> None:
        _, flat = _run_pair(_N_HINT)
        assert flat.space_bytes() > 0
        assert flat.stats()["space_bytes"] == float(flat.space_bytes())


class TestFlatVsSharded:
    @pytest.mark.parametrize("shards", (1, 2, 4, 7))
    def test_coreness_agreement(self, shards: int) -> None:
        flat = PLDSFlat(n_hint=_N_HINT)
        coord = Coordinator(_N_HINT, shards=shards)
        for batch in _stream():
            flat.update(batch)
            coord.update(batch)
        assert flat.coreness_estimates() == coord.coreness_estimates(), (
            f"flat vs {shards}-shard coordinator coreness diverged"
        )


class TestFlatRegistry:
    @pytest.mark.parametrize(
        "flat_key,record_key",
        [("pldsflat", "plds"), ("pldsflatopt", "pldsopt")],
    )
    def test_registry_twins_match(self, flat_key: str, record_key: str) -> None:
        fa = make_adapter(flat_key, _N_HINT)
        ra = make_adapter(record_key, _N_HINT)
        for batch in _stream():
            fa.update(batch)
            ra.update(batch)
        assert fa.estimates() == ra.estimates()
        assert (fa.cost.work, fa.cost.depth) == (ra.cost.work, ra.cost.depth)
