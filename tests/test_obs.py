"""Tests for the observability subsystem: tracing, metrics, exporters.

Covers the reconciliation invariant (span deltas equal metered totals
with exact integer equality), the zero-overhead-when-off contract, the
Prometheus / Chrome-trace export formats, the CLI / harness
integration points (``repro trace``, ``repro metrics``, ``repro bench
--trace``, ``repro chaos --trace``), and the structure-introspection
surface those commands report on (PLDS level/group histograms, vertex
rebuilds, sliding windows, error percentiles).

Timeline / flight-recorder / SLO-gate tests live in ``test_slo.py``
(marker ``slo``).
"""

from __future__ import annotations

import json

import pytest

from repro import faults
from repro.bench.chaos import chaos_workload, run_chaos
from repro.bench.metrics import error_percentiles, error_stats
from repro.bench.perfsuite import BenchReport, PerfEntry, run_suite
from repro.core.plds import PLDS
from repro.graphs.generators import barabasi_albert, erdos_renyi
from repro.graphs.streams import Batch, insertion_batches, sliding_window_batches
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.obs.export import (
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    MetricsRegistry,
    collecting,
    parse_prometheus,
    record_level_structure,
)
from repro.obs.tracing import (
    Tracer,
    iter_spans,
    phase_totals,
    self_cost,
    tracing,
)
from repro.parallel.engine import WorkDepthTracker
from repro.service import CoreService
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations, build_plds

pytestmark = pytest.mark.obs


def serve_workload(vertices=60, batch_size=40, algorithm="pldsopt"):
    """A small mixed insert+delete serving run (rises and desaturations)."""
    svc = CoreService(algorithm, n_hint=vertices + 1)
    batches = chaos_workload(vertices, batch_size, seed=3)
    return svc, batches


class TestTracerCore:
    def test_inactive_by_default(self):
        assert obs_tracing.ACTIVE is None
        assert obs_metrics.ACTIVE is None

    def test_begin_end_nesting(self, tracker):
        t = Tracer()
        outer = t.begin("outer", tracker)
        tracker.add(work=5, depth=2)
        inner = t.begin("inner", tracker, level=3)
        tracker.add(work=7, depth=1)
        t.end(inner)
        t.end(outer)
        assert t.roots == [outer]
        assert outer.children == [inner]
        assert (outer.work, outer.depth) == (12, 3)
        assert (inner.work, inner.depth) == (7, 1)
        assert inner.attrs == {"level": 3}
        assert inner.parent_id == outer.span_id

    def test_reconciliation_exact(self, tracker):
        t = Tracer()
        root = t.begin("root", tracker)
        tracker.add(work=3, depth=1)
        for i in range(3):
            child = t.begin("child", tracker)
            tracker.add(work=10 + i, depth=2)
            t.end(child)
        tracker.add(work=4, depth=1)
        t.end(root)
        assert root.work == sum(c.work for c in root.children) + 7
        assert self_cost(root) == (7, 2)

    def test_end_unwinds_dangling_children(self, tracker):
        t = Tracer()
        outer = t.begin("outer", tracker)
        t.begin("dangling", tracker)
        t.begin("deeper", tracker)
        t.end(outer, error="InjectedFault")
        assert not t._stack
        assert t.roots == [outer]
        (dangling,) = outer.children
        assert dangling.name == "dangling"
        assert dangling.error == "InjectedFault"
        assert dangling.children[0].name == "deeper"

    def test_end_without_open_span_raises(self):
        t = Tracer()
        with pytest.raises(RuntimeError):
            t.end()

    def test_end_foreign_span_raises(self, tracker):
        t = Tracer()
        closed = t.begin("a", tracker)
        t.end(closed)
        with pytest.raises(RuntimeError):
            t.end(closed)

    def test_span_context_manager_records_error(self, tracker):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom", tracker):
                raise ValueError("x")
        assert t.roots[0].error == "ValueError"

    def test_finish_closes_everything(self, tracker):
        t = Tracer()
        t.begin("a", tracker)
        t.begin("b", tracker)
        roots = t.finish()
        assert len(roots) == 1 and not t._stack

    def test_tracing_scope_installs_and_restores(self):
        assert obs_tracing.ACTIVE is None
        with tracing() as t:
            assert obs_tracing.ACTIVE is t
            with tracing() as t2:
                assert obs_tracing.ACTIVE is t2
            assert obs_tracing.ACTIVE is t
        assert obs_tracing.ACTIVE is None

    def test_span_without_tracker_charges_zero(self):
        t = Tracer()
        with t.span("wall-only"):
            pass
        assert (t.roots[0].work, t.roots[0].depth) == (0, 0)


class TestSpanAnalysis:
    def _forest(self, tracker):
        t = Tracer()
        with t.span("batch", tracker):
            tracker.add(work=2, depth=1)
            with t.span("rise", tracker):
                tracker.add(work=5, depth=2)
            with t.span("rise", tracker):
                tracker.add(work=3, depth=1)
        return t.roots

    def test_iter_spans_preorder(self, tracker):
        roots = self._forest(tracker)
        assert [s.name for s in iter_spans(roots)] == ["batch", "rise", "rise"]

    def test_phase_totals_inclusive(self, tracker):
        totals = phase_totals(self._forest(tracker))
        assert totals["batch"]["work"] == 10
        assert totals["rise"] == {
            "count": 2,
            "work": 8,
            "depth": 3,
            "wall_s": totals["rise"]["wall_s"],
        }

    def test_to_dict_roundtrips_through_json(self, tracker):
        (root,) = self._forest(tracker)
        data = json.loads(json.dumps(root.to_dict()))
        assert data["name"] == "batch"
        assert len(data["children"]) == 2
        assert data["work"] == 10


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("service.batches")
        reg.inc("service.batches", 2)
        reg.gauge("plds.num_levels", 14)
        reg.observe("plds.cascade_queue", 3, phase="rise")
        reg.observe("plds.cascade_queue", 700, phase="rise")
        assert reg.counter_value("service.batches") == 3
        assert reg.gauge_value("plds.num_levels") == 14
        assert reg.histogram_count("plds.cascade_queue", phase="rise") == 2
        assert reg.counter_value("nope") == 0
        assert reg.gauge_value("nope") is None

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        reg.inc("faults.fired", site="plds.rise")
        reg.inc("faults.fired", site="plds.desaturate")
        assert reg.counter_value("faults.fired", site="plds.rise") == 1
        assert reg.counter_value("faults.fired") == 0

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(buckets=(5, 1))

    def test_prometheus_roundtrip(self):
        reg = MetricsRegistry()
        reg.inc("service.retries", 4)
        reg.gauge("plds.level_occupancy", 17, level=2)
        reg.observe("plds.cascade_queue", 3, phase="rise")
        reg.observe("plds.cascade_queue", 9, phase="rise")
        text = reg.to_prometheus()
        samples = parse_prometheus(text)
        assert samples[("repro_service_retries_total", ())] == 4
        assert samples[
            ("repro_plds_level_occupancy", (("level", "2"),))
        ] == 17
        # Buckets are cumulative; the +Inf bucket equals the count.
        assert samples[
            (
                "repro_plds_cascade_queue_bucket",
                (("le", "+Inf"), ("phase", "rise")),
            )
        ] == 2
        assert samples[
            ("repro_plds_cascade_queue_sum", (("phase", "rise"),))
        ] == 12

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("not a metric line at all { ] }\n")

    def test_json_dump_format(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.observe("h", 3)
        data = reg.to_json_dict()
        assert data["format"] == 1
        assert data["counters"][0] == {"name": "a.b", "labels": {}, "value": 1}
        hist = data["histograms"][0]
        assert hist["count"] == 1 and hist["buckets"]["5"] == 1

    def test_collecting_installs_engine_hook(self, tracker):
        from repro.parallel.engine import parfor

        with collecting() as reg:
            parfor(tracker, range(3), lambda i: tracker.add())
            tracker.flat_parfor(range(2), lambda i: tracker.add())
        assert reg.counter_value("engine.parfor.calls") == 2
        # Hook must be detached afterwards: no further counting.
        parfor(tracker, range(3), lambda i: tracker.add())
        assert reg.counter_value("engine.parfor.calls") == 2

    def test_record_level_structure_gauges_plds(self):
        from repro.core.plds import PLDS

        plds = PLDS(n_hint=40)
        plds.update(Batch(insertions=barabasi_albert(30, 3, seed=1)))
        reg = MetricsRegistry()
        record_level_structure(reg, plds)
        assert reg.gauge_value("structure.num_vertices") == plds.num_vertices
        assert reg.gauge_value("structure.num_edges") == plds.num_edges
        hist = plds.level_histogram()
        total = sum(
            reg.gauge_value("plds.level_occupancy", level=lv) for lv in hist
        )
        assert total == plds.num_vertices
        assert reg.gauge_value("plds.num_levels") == plds.num_levels

    def test_record_level_structure_tolerates_flat_engines(self):
        class Flat:
            num_vertices = 5
            num_edges = 7

        reg = MetricsRegistry()
        record_level_structure(reg, Flat())
        assert reg.gauge_value("structure.num_edges") == 7
        assert reg.gauge_value("plds.num_levels") is None


class TestExporters:
    def _roots(self, tracker):
        t = Tracer()
        with t.span("batch", tracker, algorithm="plds"):
            tracker.add(work=3, depth=1)
            with t.span("rise", tracker, level=2):
                tracker.add(work=4, depth=2)
        return t.roots

    def test_chrome_trace_structure(self, tracker):
        trace = to_chrome_trace(self._roots(tracker))
        events = trace["traceEvents"]
        meta, batch, rise = events
        assert meta["ph"] == "M" and meta["args"]["name"] == "repro"
        assert batch["ph"] == "X" and batch["name"] == "batch"
        assert batch["ts"] == 0.0  # rebased to the earliest root
        assert batch["tid"] == 1 and rise["tid"] == 2  # nesting depth
        assert rise["args"]["work"] == 4 and rise["args"]["level"] == 2
        assert rise["dur"] <= batch["dur"]

    def test_chrome_trace_empty_forest(self):
        trace = to_chrome_trace([])
        assert len(trace["traceEvents"]) == 1  # metadata only

    def test_write_chrome_trace_is_valid_json(self, tracker, tmp_path):
        path = tmp_path / "t.trace.json"
        write_chrome_trace(str(path), self._roots(tracker))
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"

    def test_jsonl_flat_records(self, tracker, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_jsonl(str(path), self._roots(tracker))
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in records] == ["batch", "rise"]
        assert records[0]["num_children"] == 1
        assert "children" not in records[0]
        assert records[1]["parent_id"] == records[0]["span_id"]

    def test_jsonl_empty(self):
        assert to_jsonl([]) == ""


class TestServiceIntegration:
    def test_batch_spans_reconcile_with_telemetry_exactly(self):
        svc, batches = serve_workload()
        with tracing() as tracer:
            for b in batches:
                svc.apply_batch(b)
        roots = tracer.roots
        batch_spans = [s for s in roots if s.name == "service.batch"]
        assert len(batch_spans) == len(batches) == len(svc.telemetry)
        for span, tel in zip(batch_spans, svc.telemetry):
            assert (span.work, span.depth) == (tel.work, tel.depth)

    def test_span_tree_reconciles_internally(self):
        svc, batches = serve_workload()
        with tracing() as tracer:
            for b in batches:
                svc.apply_batch(b)
        names = set()
        for span in iter_spans(tracer.roots):
            names.add(span.name)
            if span.children:
                sw, sd = self_cost(span)
                assert sw >= 0 and sd >= 0
                assert span.work == sw + sum(c.work for c in span.children)
        assert {"service.batch", "service.apply", "plds.update"} <= names
        assert "plds.rise" in names and "plds.desaturate" in names

    def test_untraced_run_is_bit_identical(self):
        svc_a, batches = serve_workload()
        svc_b, _ = serve_workload()
        for b in batches:
            svc_a.apply_batch(b)
        with tracing():
            for b in batches:
                svc_b.apply_batch(b)
        assert svc_a.coreness_map() == svc_b.coreness_map()
        assert [t.work for t in svc_a.telemetry] == [
            t.work for t in svc_b.telemetry
        ]

    def test_service_counters(self):
        svc, batches = serve_workload()
        with collecting() as reg:
            for b in batches:
                svc.apply_batch(b)
        assert reg.counter_value("service.batches") == len(batches)
        assert reg.counter_value("plds.rise_levels") > 0
        assert reg.counter_value("plds.desaturate_levels") > 0
        assert reg.histogram_count("plds.cascade_queue", phase="rise") > 0

    def test_fault_recovery_counters_and_spans(self):
        from repro.service import AuditPolicy, RetryPolicy

        svc = CoreService(
            "pldsopt",
            n_hint=61,
            retry=RetryPolicy(max_attempts=3),
            audit=AuditPolicy("on-recovery"),
        )
        batches = chaos_workload(60, 40, seed=3)
        plan = faults.FaultPlan([faults.FaultPoint("plds.rise", 5)])
        with collecting() as reg, tracing() as tracer, faults.active(plan):
            for b in batches:
                svc.apply_batch(b)
        assert plan.fired
        assert reg.counter_value("faults.fired", site="plds.rise") == 1
        assert reg.counter_value("service.rollbacks") == 1
        assert reg.counter_value("service.retries") == 1
        # Internal rollback is not a user-facing restore.
        assert reg.counter_value("service.restores", mode="snapshot") == 0
        failed = [
            s
            for s in iter_spans(tracer.roots)
            if s.name == "service.apply" and s.error == "InjectedFault"
        ]
        assert len(failed) == 1
        # Recovery still reconciles: the end state matches an untraced run.
        ref, _ = serve_workload()
        for b in batches:
            ref.apply_batch(b)
        assert svc.coreness_map() == ref.coreness_map()

    def test_restore_truncates_telemetry_and_counts(self):
        svc, batches = serve_workload()
        for b in batches[: len(batches) // 2]:
            svc.apply_batch(b)
        snap = svc.snapshot()
        kept = len(svc.telemetry)
        for b in batches[len(batches) // 2 :]:
            svc.apply_batch(b)
        with collecting() as reg, tracing() as tracer:
            svc.restore(snap)
        assert len(svc.telemetry) == kept
        assert all(t.batch_id <= snap.batches_applied for t in svc.telemetry)
        assert reg.counter_value("service.restores", mode="snapshot") == 1
        (span,) = [
            s for s in iter_spans(tracer.roots) if s.name == "service.restore"
        ]
        assert span.attrs["mode"] == "snapshot"
        assert span.attrs["snapshot_id"] == snap.snapshot_id

    def test_from_journal_emits_restore_metrics(self):
        svc, batches = serve_workload(vertices=40)
        for b in batches:
            svc.apply_batch(b)
        with collecting() as reg, tracing() as tracer:
            rebuilt = CoreService.from_journal(
                svc.journal, svc.algorithm, n_hint=41
            )
        assert rebuilt.coreness_map() == svc.coreness_map()
        assert reg.counter_value("service.restores", mode="journal") == 1
        restore_roots = [s for s in tracer.roots if s.name == "service.restore"]
        assert restore_roots and restore_roots[0].attrs["mode"] == "journal"

    def test_telemetry_to_dict_roundtrips(self):
        svc, batches = serve_workload(vertices=40)
        tel = svc.apply_batch(batches[0])
        d = tel.to_dict()
        assert d["batch_id"] == tel.batch_id
        assert d["work"] == tel.work
        json.dumps(d)  # JSON-serializable as-is


class TestHarnessIntegration:
    def test_run_suite_trace_attaches_phases(self):
        entries = run_suite(
            scale=0.02, algos=("plds",), workloads=("powerlaw-ins",), trace=True
        )
        (entry,) = entries
        assert entry.phases is not None
        assert entry.phases["plds.update"]["work"] <= entry.work
        assert entry.phases["plds.update"]["work"] > 0

    def test_run_suite_untraced_has_no_phases(self):
        entries = run_suite(
            scale=0.02, algos=("plds",), workloads=("powerlaw-ins",)
        )
        assert entries[0].phases is None

    def test_bench_report_loads_pre_phases_files(self):
        data = {
            "format": 1,
            "label": "old",
            "scale": 1.0,
            "entries": [
                {
                    "workload": "powerlaw-ins",
                    "algo": "plds",
                    "wall_s": 0.1,
                    "work": 10,
                    "depth": 2,
                    "space": 64,
                }
            ],
        }
        report = BenchReport.from_json_dict(data)
        assert report.entries[0].phases is None
        # And the round-trip (with the new field) still loads.
        again = BenchReport.from_json_dict(
            json.loads(json.dumps(report.to_json_dict()))
        )
        assert again.entries[0] == PerfEntry(
            workload="powerlaw-ins",
            algo="plds",
            wall_s=0.1,
            work=10,
            depth=2,
            space=64,
        )

    def test_run_chaos_trace_attaches_report_sections(self):
        report = run_chaos(vertices=60, trials=2, seed=1, trace=True)
        assert report.ok
        assert report.trace  # baseline span forest
        assert report.trace[0]["name"] == "service.batch"
        metrics = report.metrics
        assert metrics is not None and metrics["format"] == 1
        fired = [
            c for c in metrics["counters"] if c["name"] == "faults.fired"
        ]
        assert sum(c["value"] for c in fired) >= 2  # one per trial
        data = report.to_json_dict()
        assert "trace" in data and "metrics" in data
        json.dumps(data)

    def test_run_chaos_untraced_report_unchanged(self):
        report = run_chaos(vertices=60, trials=1, seed=1)
        data = report.to_json_dict()
        assert "trace" not in data and "metrics" not in data
        assert data["trials"][0]["recovery_telemetry"]  # satellite: rows present


class TestObsCli:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_trace_command_chrome(self, capsys, tmp_path):
        out_path = tmp_path / "t.trace.json"
        code, out = self.run(
            capsys,
            "trace",
            "--vertices", "60",
            "--batch-size", "40",
            "--output", str(out_path),
        )
        assert code == 0
        assert "reconciliation" in out and "OK" in out
        trace = json.loads(out_path.read_text())
        names = {e["name"] for e in trace["traceEvents"]}
        assert "service.batch" in names and "plds.rise" in names

    def test_trace_command_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "spans.jsonl"
        code, _ = self.run(
            capsys,
            "trace",
            "--vertices", "60",
            "--format", "jsonl",
            "--output", str(out_path),
        )
        assert code == 0
        records = [json.loads(l) for l in out_path.read_text().splitlines()]
        assert any(r["name"] == "plds.update" for r in records)

    def test_metrics_command_prom_parses(self, capsys):
        code, out = self.run(
            capsys, "metrics", "--vertices", "60", "--format", "prom"
        )
        assert code == 0
        samples = parse_prometheus(out)
        assert samples[("repro_service_batches_total", ())] > 0
        assert any(n == "repro_plds_level_occupancy" for n, _ in samples)

    def test_metrics_command_json_to_file(self, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        code, _ = self.run(
            capsys,
            "metrics",
            "--vertices", "60",
            "--format", "json",
            "--output", str(out_path),
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert data["format"] == 1

    def test_trace_out_alias(self, capsys, tmp_path):
        out_path = tmp_path / "alias.trace.json"
        code, _ = self.run(
            capsys,
            "trace",
            "--vertices", "60",
            "--batch-size", "40",
            "--out", str(out_path),
        )
        assert code == 0
        assert json.loads(out_path.read_text())["traceEvents"]

    def test_metrics_prometheus_format_spelling(self, capsys, tmp_path):
        out_path = tmp_path / "metrics.prom"
        code, _ = self.run(
            capsys,
            "metrics",
            "--vertices", "60",
            "--format", "prometheus",
            "--out", str(out_path),
        )
        assert code == 0
        samples = parse_prometheus(out_path.read_text())
        assert samples[("repro_service_batches_total", ())] > 0

    def test_unwritable_output_exits_2_with_site(self, capsys, tmp_path):
        from repro.cli import main

        missing_dir = tmp_path / "no" / "such" / "dir"
        for argv in (
            ["trace", "--vertices", "40",
             "--out", str(missing_dir / "t.json")],
            ["metrics", "--vertices", "40",
             "--out", str(missing_dir / "m.prom")],
        ):
            code = main(argv)
            err = capsys.readouterr().err
            assert code == 2
            assert err.startswith("repro: error:") and ".py:" in err

    def test_cli_leaves_hooks_clear(self, capsys, tmp_path):
        self.run(
            capsys, "trace", "--vertices", "60",
            "--output", str(tmp_path / "t.json"),
        )
        self.run(capsys, "metrics", "--vertices", "60")
        assert obs_tracing.ACTIVE is None
        assert obs_metrics.ACTIVE is None

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        from repro import cli

        def boom(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(
            cli, "build_parser", lambda: _FakeParser(boom)
        )
        assert cli.main(["x"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_error_line_names_raising_site(self, capsys):
        from repro.cli import main

        code = main(["kcore", "--edges", "/definitely/not/here.txt"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("repro: error:")
        assert ".py:" in err  # the (file.py:line) suffix


class TestCommittedSamples:
    """The samples in docs/samples/ must stay internally consistent."""

    def _samples_dir(self):
        import pathlib

        return pathlib.Path(__file__).resolve().parent.parent / "docs" / "samples"

    def test_committed_jsonl_reconciles(self):
        path = self._samples_dir() / "powerlaw.spans.jsonl"
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert records
        by_id = {r["span_id"]: r for r in records}
        children: dict[int, list[dict]] = {}
        for r in records:
            if r["parent_id"] is not None:
                children.setdefault(r["parent_id"], []).append(r)
        for r in records:
            kids = children.get(r["span_id"], [])
            assert len(kids) == r["num_children"]
            if kids:
                # Parent == self + sum(children), exact integer equality.
                assert r["work"] >= sum(k["work"] for k in kids)
                assert r["depth"] >= sum(k["depth"] for k in kids)
        # Root service.batch spans partition the run's total cost.
        roots = [r for r in records if r["parent_id"] is None]
        assert all(r["name"] == "service.batch" for r in roots)
        assert sum(r["work"] for r in roots) > 0

    def test_committed_chrome_trace_parses(self):
        path = self._samples_dir() / "powerlaw.trace.json"
        trace = json.loads(path.read_text())
        events = trace["traceEvents"]
        assert events[0]["ph"] == "M"
        names = {e["name"] for e in events}
        assert {"service.batch", "plds.update", "plds.rise"} <= names
        complete = [e for e in events if e.get("ph") == "X"]
        assert all(e["dur"] >= 0 and e["ts"] >= 0 for e in complete)


class TestPLDSStats:
    def test_level_histogram_counts_all_vertices(self):
        plds = build_plds(erdos_renyi(60, 240, seed=1))
        hist = plds.level_histogram()
        assert sum(hist.values()) == plds.num_vertices
        assert all(0 <= l < plds.num_levels for l in hist)

    def test_group_histogram_consistent_with_levels(self):
        plds = build_plds(erdos_renyi(60, 240, seed=1))
        lv = plds.level_histogram()
        gr = plds.group_histogram()
        assert sum(gr.values()) == sum(lv.values())
        regrouped: dict[int, int] = {}
        for level, c in lv.items():
            g = plds.group_number(level)
            regrouped[g] = regrouped.get(g, 0) + c
        assert regrouped == gr

    def test_stats_snapshot_fields(self):
        plds = build_plds(erdos_renyi(60, 240, seed=1))
        s = plds.stats()
        assert s["num_vertices"] == 60
        assert s["num_edges"] == 240
        assert s["work"] > 0
        assert s["max_level_in_use"] <= s["num_levels"]
        assert 0 < s["mean_level"] <= s["max_level_in_use"]

    def test_stats_on_empty_structure(self):
        s = PLDS(n_hint=10).stats()
        assert s["num_vertices"] == 0
        assert s["mean_level"] == 0.0


class TestVertexUpdateRebuild:
    def test_rebuild_counter_triggers(self):
        plds = PLDS(n_hint=40)
        edges = erdos_renyi(30, 80, seed=2)
        plds.update(Batch(insertions=edges))
        # Churn vertices well past n/2 updates: isolated adds + removes.
        for i in range(5):
            plds.insert_vertices(range(100 + i * 10, 110 + i * 10))
        plds.delete_vertices(range(100, 150))
        assert plds._vertex_updates <= max(plds.n_hint // 2, 8)
        assert_no_violations(plds)
        assert set(plds.edges()) == set(edges)

    def test_structure_shrinks_after_mass_vertex_deletion(self):
        plds = PLDS(n_hint=20)
        plds.insert_vertices(range(500))  # forces growth rebuilds
        grown_hint = plds.n_hint
        assert grown_hint >= 500
        plds.delete_vertices(range(500))
        assert plds.n_hint < grown_hint
        assert plds.num_vertices == 0

    def test_estimates_survive_rebuild(self):
        edges = erdos_renyi(50, 200, seed=3)
        plds = PLDS(n_hint=8)
        plds.update(Batch(insertions=edges))
        exact = exact_coreness(edges)
        for v, k in exact.items():
            if k == 0:
                continue
            est = plds.coreness_estimate(v)
            assert est > 0
            assert max(est / k, k / est) <= plds.approximation_factor() + 1e-9


class TestSlidingWindow:
    def test_window_size_respected(self):
        edges = erdos_renyi(80, 300, seed=4)
        batches = sliding_window_batches(edges, window=100, batch_size=40)
        live: set = set()
        for b in batches:
            live |= set(b.insertions)
            live -= set(b.deletions)
            assert len(live) <= 100

    def test_all_edges_eventually_inserted(self):
        edges = erdos_renyi(80, 300, seed=4)
        batches = sliding_window_batches(edges, window=100, batch_size=40)
        inserted = [e for b in batches for e in b.insertions]
        # cancelled pairs excepted, every edge appears at most once
        assert len(inserted) == len(set(inserted))

    def test_no_same_batch_insert_delete_conflicts(self):
        edges = erdos_renyi(80, 300, seed=4)
        for b in sliding_window_batches(edges, window=10, batch_size=40):
            assert not set(b.insertions) & set(b.deletions)

    def test_plds_consumes_sliding_window(self):
        edges = erdos_renyi(80, 300, seed=5)
        plds = PLDS(n_hint=90)
        live: set = set()
        for b in sliding_window_batches(edges, window=120, batch_size=30):
            plds.update(b)
            live |= set(b.insertions)
            live -= set(b.deletions)
            assert_no_violations(plds)
        assert set(plds.edges()) == live

    def test_param_validation(self):
        with pytest.raises(ValueError):
            sliding_window_batches([(0, 1)], window=0, batch_size=1)
        with pytest.raises(ValueError):
            sliding_window_batches([(0, 1)], window=5, batch_size=0)


class TestErrorPercentiles:
    def test_monotone_in_percentile(self):
        est = {i: float(i % 4 + 1) for i in range(100)}
        exact = {i: 2 for i in range(100)}
        pct = error_percentiles(est, exact)
        values = [pct[p] for p in sorted(pct)]
        assert values == sorted(values)

    def test_p100_equals_max(self):
        est = {1: 1.0, 2: 8.0}
        exact = {1: 1, 2: 2}
        stats = error_stats(est, exact)
        pct = error_percentiles(est, exact)
        assert pct[100.0] == stats.maximum == 4.0

    def test_skips_zero_cores(self):
        pct = error_percentiles({1: 5.0}, {1: 0})
        assert pct[100.0] == 1.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            error_percentiles({1: 1.0}, {1: 1}, percentiles=(150.0,))

    def test_median_of_uniform_distribution(self):
        est = {i: 2.0 for i in range(10)}
        exact = {i: 2 for i in range(10)}
        assert error_percentiles(est, exact)[50.0] == 1.0


class _FakeParser:
    def __init__(self, fn):
        self._fn = fn

    def parse_args(self, argv):
        import argparse

        return argparse.Namespace(fn=self._fn)
