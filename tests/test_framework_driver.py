"""Tests for the Section-8 framework driver itself."""

from __future__ import annotations

from repro.core.plds import DirectedEdge
from repro.framework.framework import FrameworkDriver
from repro.graphs.streams import Batch, EdgeUpdate


class RecordingApp:
    """Captures the callback sequence for assertions."""

    def __init__(self) -> None:
        self.calls: list[tuple[str, object]] = []

    def batch_flips(self, flips, ins, dels):
        self.calls.append(("flips", (list(flips), list(ins), list(dels))))

    def batch_delete(self, dels):
        self.calls.append(("delete", list(dels)))

    def batch_insert(self, ins):
        self.calls.append(("insert", list(ins)))


class RecordingAppWithMoved(RecordingApp):
    def batch_moved(self, moved):
        self.calls.append(("moved", set(moved)))


class TestCallbackOrdering:
    def test_flips_then_delete_then_insert(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        driver.update(Batch(insertions=[(0, 1), (1, 2)]))
        assert [c[0] for c in app.calls] == ["flips", "delete", "insert"]

    def test_batch_moved_called_first_when_present(self):
        app = RecordingAppWithMoved()
        driver = FrameworkDriver(app, n_hint=10)
        clique = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        driver.update(Batch(insertions=clique))
        assert app.calls[0][0] == "moved"
        assert app.calls[0][1]  # a clique forces level moves

    def test_oriented_insertions_passed_through(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        driver.update(Batch(insertions=[(3, 4)]))
        kind, ins = app.calls[-1]
        assert kind == "insert"
        assert ins in ([(3, 4)], [(4, 3)])

    def test_deletions_carry_pre_batch_orientation(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        expected = driver.plds.orientation_of(0, 1)
        driver.update(Batch(deletions=[(0, 1)]))
        deletes = [c for c in app.calls if c[0] == "delete"][-1][1]
        assert deletes == [expected]


class TestUpdateRaw:
    def test_dedupe_and_validate(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        updates = [
            EdgeUpdate(0, 1, True, timestamp=0),    # duplicate insert: dropped
            EdgeUpdate(1, 2, True, timestamp=0),    # valid insert
            EdgeUpdate(1, 2, False, timestamp=1),   # ...superseded by delete
            EdgeUpdate(5, 6, False, timestamp=0),   # delete missing: dropped
            EdgeUpdate(2, 3, True, timestamp=0),    # valid insert
        ]
        driver.update_raw(updates)
        assert driver.plds.has_edge(2, 3)
        assert not driver.plds.has_edge(1, 2)
        assert driver.plds.has_edge(0, 1)

    def test_raw_reinsert_after_delete_in_one_call(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        driver.update_raw(
            [
                EdgeUpdate(0, 1, False, timestamp=0),
                EdgeUpdate(0, 1, True, timestamp=1),
            ]
        )
        # Final state: edge exists (latest wins; it already existed, so
        # the insert is dropped as invalid and the delete superseded).
        assert driver.plds.has_edge(0, 1)


class TestDriverConfig:
    def test_group_shrink_forwarded(self):
        app = RecordingApp()
        fast = FrameworkDriver(app, n_hint=1000, group_shrink=50)
        slow = FrameworkDriver(app, n_hint=1000)
        assert fast.plds.num_levels < slow.plds.num_levels

    def test_driver_owns_orientation_tracking(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        assert driver.plds.track_orientation

    def test_shared_tracker(self):
        app = RecordingApp()
        driver = FrameworkDriver(app, n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        assert driver.tracker.work > 0
        assert driver.tracker is driver.plds.tracker
