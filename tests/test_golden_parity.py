"""Golden parity: optimized hot paths match the pre-optimization reference.

The PR-1 hot-path rewrite (cached degrees, integer threshold tables,
aggregate charging, record-reference adjacency) must be *observationally
invisible*: on the same update stream, the structures must produce
bit-identical coreness estimates AND bit-identical metered (work, depth)
totals to the seed implementation.  The reference values were recorded
from the seed (see ``fixtures/golden_parity.json``); regenerate
deliberately — never to paper over a diff — with::

    PYTHONPATH=src python -m tests.test_golden_parity

One deliberate exception: the seed's sequential LDS popped its cascade
queue in CPython int-set order, an artifact of the set's full insertion
history that became irreproducible once adjacency sets started holding
records (which hash by address).  The LDS now feeds its queue in sorted
order — a canonical, run-to-run-deterministic tie-break.  On this stream
that shifted the ``lds`` entry's work/depth from the seed's 3380/6320 to
3382/6322 while leaving its coreness estimates bit-identical; every PLDS
entry still matches the seed exactly.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.core.lds import LDS
from repro.core.plds import PLDS
from repro.core.plds_flat import PLDSFlat
from repro.graphs.streams import Batch

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "golden_parity.json"
)

_N = 80
_N_HINT = 100


def _stream(seed: int = 1234, n: int = _N, rounds: int = 10, batch: int = 40):
    """Deterministic mixed stream: insert-heavy, then mixed, then delete-heavy."""
    rng = random.Random(seed)
    live: set[tuple[int, int]] = set()
    batches: list[Batch] = []
    for r in range(rounds):
        if r < 4:
            ins_target, del_target = batch, 0
        elif r < 7:
            ins_target, del_target = batch // 2, batch // 2
        else:
            ins_target, del_target = 5, batch
        ins: set[tuple[int, int]] = set()
        tries = 0
        while len(ins) < ins_target and tries < 20 * batch:
            u, w = rng.randrange(n), rng.randrange(n)
            tries += 1
            if u == w:
                continue
            e = (u, w) if u < w else (w, u)
            if e in live or e in ins:
                continue
            ins.add(e)
        avail = sorted(live)
        rng.shuffle(avail)
        dels = avail[: min(del_target, len(avail))]
        live |= ins
        live -= set(dels)
        batches.append(Batch(insertions=sorted(ins), deletions=sorted(dels)))
    return batches


def _scenarios() -> dict[str, object]:
    return {
        "plds-levelwise": lambda: PLDS(n_hint=_N_HINT),
        "plds-jump": lambda: PLDS(n_hint=_N_HINT, insertion_strategy="jump"),
        "pldsopt": lambda: PLDS(
            n_hint=_N_HINT, group_shrink=50, insertion_strategy="jump"
        ),
        "plds-orient-det": lambda: PLDS(
            n_hint=_N_HINT, track_orientation=True, structure="deterministic"
        ),
        "plds-space": lambda: PLDS(n_hint=_N_HINT, structure="space_efficient"),
        "plds-rebuild": lambda: PLDS(n_hint=32),
        "lds": lambda: LDS(n_hint=_N_HINT),
        # Flat-layout twins: these MUST stay entry-for-entry identical to
        # plds-levelwise / plds-jump / pldsopt above (the flat layout is
        # a representation change, not an algorithm change); the twin
        # equality is asserted by test_flat_entries_match_record_twins.
        "pldsflat-levelwise": lambda: PLDSFlat(n_hint=_N_HINT),
        "pldsflat-jump": lambda: PLDSFlat(
            n_hint=_N_HINT, insertion_strategy="jump"
        ),
        "pldsflatopt": lambda: PLDSFlat(
            n_hint=_N_HINT, group_shrink=50, insertion_strategy="jump"
        ),
    }


def _run_scenario(name: str) -> dict:
    struct = _scenarios()[name]()
    for b in _stream():
        struct.update(b)
    return {
        "work": struct.tracker.work,
        "depth": struct.tracker.depth,
        "estimates": sorted(
            [v, est] for v, est in struct.coreness_estimates().items()
        ),
    }


def _load_fixture() -> dict:
    with open(FIXTURE_PATH, encoding="utf-8") as fh:
        return json.load(fh)


@pytest.mark.parametrize("name", sorted(_scenarios()))
def test_golden_parity(name: str) -> None:
    reference = _load_fixture()[name]
    got = _run_scenario(name)
    assert got["work"] == reference["work"], (
        f"{name}: metered work changed: {reference['work']} -> {got['work']}"
    )
    assert got["depth"] == reference["depth"], (
        f"{name}: metered depth changed: {reference['depth']} -> {got['depth']}"
    )
    assert got["estimates"] == reference["estimates"], (
        f"{name}: coreness estimates diverged from the seed reference"
    )


@pytest.mark.parametrize(
    "flat_name,record_name",
    [
        ("pldsflat-levelwise", "plds-levelwise"),
        ("pldsflat-jump", "plds-jump"),
        ("pldsflatopt", "pldsopt"),
    ],
)
def test_flat_entries_match_record_twins(
    flat_name: str, record_name: str
) -> None:
    """The flat-layout fixture entries are byte-identical to their
    record-layout twins — the golden file itself witnesses the parity."""
    fixture = _load_fixture()
    assert fixture[flat_name] == fixture[record_name]


def regenerate() -> None:  # pragma: no cover - maintenance entry point
    os.makedirs(os.path.dirname(FIXTURE_PATH), exist_ok=True)
    data = {name: _run_scenario(name) for name in sorted(_scenarios())}
    with open(FIXTURE_PATH, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {FIXTURE_PATH}")


if __name__ == "__main__":  # pragma: no cover
    regenerate()
