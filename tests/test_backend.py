"""Determinism goldens for the process-pool execution backend.

The contract (ISSUE 6 / docs/cost_model.md "Choosing an execution
backend"): :class:`repro.parallel.pool.PoolBackend` is observationally
identical to the simulated :class:`~repro.parallel.engine.
WorkDepthTracker` — same coreness estimates AND bit-identical metered
(work, depth) — while actually fanning the deletion-phase consider scan
out to worker processes over a shared-memory level image.  These tests
pin that equivalence across seeds, under seeded fault injection, and
through the degraded no-shared-memory fallback path.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.plds import PLDS
from repro.core.plds_flat import PLDSFlat
from repro.faults import FaultPlan, FaultPoint, InjectedFault
from repro.obs.metrics import collecting
from repro.obs.timeline import split_series_key
from repro.obs.tracing import tracing
from repro.parallel import pool as poolmod
from repro.parallel.pool import PoolBackend
from repro.registry import make_adapter
from repro.service import CoreService

from .test_golden_parity import _N_HINT, _stream

pytestmark = pytest.mark.backend

SEEDS = (1234, 7, 99)


def _run_flat(tracker=None, seed: int = 1234, **kwargs) -> PLDSFlat:
    plds = PLDSFlat(n_hint=_N_HINT, tracker=tracker, **kwargs)
    for batch in _stream(seed=seed):
        plds.update(batch)
    return plds


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_matches_serial(self, seed: int) -> None:
        """Pool-backend coreness and metered totals are bit-identical to
        the simulated backend (and hence to the record engine)."""
        serial = _run_flat(seed=seed, group_shrink=50)
        with PoolBackend(workers=2) as pool:
            parallel = _run_flat(tracker=pool, seed=seed, group_shrink=50)
            assert pool.dispatches > 0, "pool backend never dispatched"
            assert pool.fallbacks == 0
        record = PLDS(n_hint=_N_HINT, group_shrink=50)
        for batch in _stream(seed=seed):
            record.update(batch)
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert parallel.coreness_estimates() == record.coreness_estimates()
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            record.tracker.work,
            record.tracker.depth,
        )

    def test_parallel_matches_serial_under_seeded_fault(self) -> None:
        """Both backends fire the engine.parfor fault site in the same
        sequence: the same seeded plan trips at the same update, and the
        partially applied state is still bit-identical."""

        def run(tracker) -> tuple[int, PLDSFlat, FaultPlan]:
            plan = FaultPlan([FaultPoint("engine.parfor", 10)])
            plds = PLDSFlat(n_hint=_N_HINT, tracker=tracker, group_shrink=50)
            with faults.active(plan):
                for i, batch in enumerate(_stream()):
                    try:
                        plds.update(batch)
                    except InjectedFault:
                        assert plan.fired == [FaultPoint("engine.parfor", 10)]
                        return i, plds, plan
            pytest.fail("fault plan never fired")

        serial_at, serial, _ = run(None)
        with PoolBackend(workers=2) as pool:
            parallel_at, parallel, _ = run(pool)
        assert parallel_at == serial_at, "fault tripped at different updates"
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )


class TestFallbackGuard:
    def test_fallback_warns_counts_and_stays_identical(self, monkeypatch) -> None:
        serial = _run_flat(group_shrink=50)
        monkeypatch.setattr(poolmod, "shared_memory", None)
        with collecting() as reg, PoolBackend(workers=2) as pool:
            with pytest.warns(RuntimeWarning, match="shared_memory unavailable"):
                degraded = _run_flat(tracker=pool, group_shrink=50)
            assert pool.dispatches == 0
            assert pool.fallbacks > 0
            assert (
                reg.counter_value("engine.pool_fallback.calls")
                == pool.fallbacks
            )
        assert degraded.coreness_estimates() == serial.coreness_estimates()
        assert (degraded.tracker.work, degraded.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )

    def test_warning_emitted_once(self, monkeypatch) -> None:
        monkeypatch.setattr(poolmod, "shared_memory", None)
        import warnings as _warnings

        with PoolBackend(workers=2) as pool:
            with _warnings.catch_warnings(record=True) as caught:
                _warnings.simplefilter("always")
                _run_flat(tracker=pool, group_shrink=50)
            runtime = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime) == 1
            assert pool.fallbacks > 1


class TestBackendSelection:
    def test_registry_backend_option(self) -> None:
        sim = make_adapter("pldsflatopt", _N_HINT)
        par = make_adapter("pldsflatopt", _N_HINT, backend="pool", workers=2)
        try:
            for batch in _stream():
                sim.update(batch)
                par.update(batch)
            assert par.estimates() == sim.estimates()
            assert (par.cost.work, par.cost.depth) == (
                sim.cost.work,
                sim.cost.depth,
            )
            assert par.tracker.dispatches > 0
        finally:
            par.tracker.close()

    def test_registry_rejects_unknown_backend(self) -> None:
        with pytest.raises(ValueError, match="backend"):
            make_adapter("pldsflatopt", _N_HINT, backend="gpu")

    def test_core_service_engine_option(self) -> None:
        svc = CoreService(
            "pldsflatopt", n_hint=_N_HINT, backend="pool", workers=2
        )
        twin = CoreService("pldsflatopt", n_hint=_N_HINT)
        try:
            for batch in _stream():
                svc.apply_batch(batch)
                twin.apply_batch(batch)
            assert svc.coreness_map() == twin.coreness_map()
            assert svc._adapter.tracker.dispatches > 0
        finally:
            svc._adapter.tracker.close()

    def test_pool_backend_rejects_bad_workers(self) -> None:
        with pytest.raises(ValueError, match="workers"):
            PoolBackend(workers=0)


class TestPoolWorkerVisibility:
    """Worker-level telemetry (ISSUE 9): every pool dispatch publishes
    per-worker ``engine.pool.*{worker=i}`` series and a ``pool.dispatch``
    span, without perturbing the bit-identical-to-simulated contract."""

    @staticmethod
    def _walk(spans):
        for span in spans:
            yield span
            yield from TestPoolWorkerVisibility._walk(span.children)

    def test_worker_series_and_dispatch_spans(self) -> None:
        serial = _run_flat(seed=1234, group_shrink=50)
        with collecting() as reg, tracing() as tracer:
            with PoolBackend(workers=2) as pool:
                parallel = _run_flat(tracker=pool, seed=1234, group_shrink=50)
                assert pool.dispatches > 0
                dispatches = pool.dispatches
        # Telemetry never perturbs the computation.
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )
        counters, gauges, _ = reg.flat_series()
        assert counters["engine.pool.dispatches"] == dispatches
        workers = sorted(
            dict(split_series_key(key)[1])["worker"]
            for key in counters
            if key.startswith("engine.pool.tasks{")
        )
        assert workers and workers[0] == "0"
        for worker in workers:
            assert counters[f"engine.pool.tasks{{worker={worker}}}"] > 0
            lo = gauges[f"engine.pool.slot_lo{{worker={worker}}}"]
            hi = gauges[f"engine.pool.slot_hi{{worker={worker}}}"]
            assert 0 <= lo < hi
        assert gauges["engine.pool.slot_lo{worker=0}"] == 0
        spans = [
            s for s in self._walk(tracer.finish()) if s.name == "pool.dispatch"
        ]
        assert len(spans) == dispatches
        assert all(
            s.attrs["items"] > 0 and s.attrs["workers"] >= 1 for s in spans
        )

    def test_simulated_backend_emits_no_worker_series(self) -> None:
        with collecting() as reg:
            _run_flat(seed=1234, group_shrink=50)
        counters, gauges, _ = reg.flat_series()
        assert not any(k.startswith("engine.pool.") for k in counters)
        assert not any(k.startswith("engine.pool.") for k in gauges)
