"""Determinism goldens for the process-pool execution backend.

The contract (ISSUE 6 / docs/cost_model.md "Choosing an execution
backend"): :class:`repro.parallel.pool.PoolBackend` is observationally
identical to the simulated :class:`~repro.parallel.engine.
WorkDepthTracker` — same coreness estimates AND bit-identical metered
(work, depth) — while actually fanning pool-capable read-only scans
out to worker processes over a *resident* shared-memory graph image
(ISSUE 10): the deletion-phase consider scan, the insertion-phase
jump-rise scan, and the shard kernels' post-ghost-exchange desire
evaluation.  These tests pin that equivalence across seeds and shard
counts, under seeded fault injection, through the degraded
no-shared-memory fallback path, and gate the dirty-range delta
protocol and the segment lifecycle.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro
from repro import faults
from repro.core.plds import PLDS
from repro.core.plds_flat import PLDSFlat
from repro.faults import FaultPlan, FaultPoint, InjectedFault
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch
from repro.obs.metrics import collecting
from repro.obs.timeline import split_series_key
from repro.obs.tracing import tracing
from repro.parallel import pool as poolmod
from repro.parallel.engine import WorkDepthTracker
from repro.parallel.pool import PoolBackend
from repro.registry import make_adapter
from repro.service import CoreService
from repro.shard.coordinator import Coordinator

from .test_golden_parity import _N_HINT, _stream

pytestmark = pytest.mark.backend

SEEDS = (1234, 7, 99)

#: shard counts for the backend × shard matrix (ISSUE 10 satellite):
#: degenerate, even, the CI default, and a prime that misaligns every
#: hash-partition boundary.
SHARD_COUNTS = (1, 2, 4, 7)

#: flat-engine config whose insertion phase runs the jump-rise scan
#: (the second pool-dispatched parfor).
JUMP_KW = {"group_shrink": 50, "insertion_strategy": "jump"}


def _run_flat(tracker=None, seed: int = 1234, **kwargs) -> PLDSFlat:
    plds = PLDSFlat(n_hint=_N_HINT, tracker=tracker, **kwargs)
    for batch in _stream(seed=seed):
        plds.update(batch)
    return plds


def _run_sharded(shards: int, tracker=None, seed: int = 1234) -> Coordinator:
    coord = Coordinator(_N_HINT, shards=shards, tracker=tracker)
    for batch in _stream(seed=seed):
        coord.update(batch)
    return coord


def _meters(tracker) -> tuple[int, int]:
    return tracker.work, tracker.depth


class TestParallelMatchesSerial:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_matches_serial(self, seed: int) -> None:
        """Pool-backend coreness and metered totals are bit-identical to
        the simulated backend (and hence to the record engine)."""
        serial = _run_flat(seed=seed, group_shrink=50)
        with PoolBackend(workers=2) as pool:
            parallel = _run_flat(tracker=pool, seed=seed, group_shrink=50)
            assert pool.dispatches > 0, "pool backend never dispatched"
            assert pool.fallbacks == 0
        record = PLDS(n_hint=_N_HINT, group_shrink=50)
        for batch in _stream(seed=seed):
            record.update(batch)
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert parallel.coreness_estimates() == record.coreness_estimates()
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            record.tracker.work,
            record.tracker.depth,
        )

    def test_parallel_matches_serial_under_seeded_fault(self) -> None:
        """Both backends fire the engine.parfor fault site in the same
        sequence: the same seeded plan trips at the same update, and the
        partially applied state is still bit-identical."""

        def run(tracker) -> tuple[int, PLDSFlat, FaultPlan]:
            plan = FaultPlan([FaultPoint("engine.parfor", 10)])
            plds = PLDSFlat(n_hint=_N_HINT, tracker=tracker, group_shrink=50)
            with faults.active(plan):
                for i, batch in enumerate(_stream()):
                    try:
                        plds.update(batch)
                    except InjectedFault:
                        assert plan.fired == [FaultPoint("engine.parfor", 10)]
                        return i, plds, plan
            pytest.fail("fault plan never fired")

        serial_at, serial, _ = run(None)
        with PoolBackend(workers=2) as pool:
            parallel_at, parallel, _ = run(pool)
        assert parallel_at == serial_at, "fault tripped at different updates"
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )


class TestFallbackGuard:
    def test_fallback_warns_counts_and_stays_identical(self, monkeypatch) -> None:
        serial = _run_flat(group_shrink=50)
        monkeypatch.setattr(poolmod, "shared_memory", None)
        with collecting() as reg, PoolBackend(workers=2) as pool:
            with pytest.warns(RuntimeWarning, match="shared_memory unavailable"):
                degraded = _run_flat(tracker=pool, group_shrink=50)
            assert pool.dispatches == 0
            assert pool.fallbacks > 0
            assert (
                reg.counter_value("engine.pool_fallback.calls")
                == pool.fallbacks
            )
        assert degraded.coreness_estimates() == serial.coreness_estimates()
        assert (degraded.tracker.work, degraded.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )

    def test_warning_emitted_once(self, monkeypatch) -> None:
        monkeypatch.setattr(poolmod, "shared_memory", None)
        import warnings as _warnings

        with PoolBackend(workers=2) as pool:
            with _warnings.catch_warnings(record=True) as caught:
                _warnings.simplefilter("always")
                _run_flat(tracker=pool, group_shrink=50)
            runtime = [
                w for w in caught if issubclass(w.category, RuntimeWarning)
            ]
            assert len(runtime) == 1
            assert pool.fallbacks > 1


class TestBackendSelection:
    def test_registry_backend_option(self) -> None:
        sim = make_adapter("pldsflatopt", _N_HINT)
        par = make_adapter("pldsflatopt", _N_HINT, backend="pool", workers=2)
        try:
            for batch in _stream():
                sim.update(batch)
                par.update(batch)
            assert par.estimates() == sim.estimates()
            assert (par.cost.work, par.cost.depth) == (
                sim.cost.work,
                sim.cost.depth,
            )
            assert par.tracker.dispatches > 0
        finally:
            par.tracker.close()

    def test_registry_rejects_unknown_backend(self) -> None:
        with pytest.raises(ValueError, match="backend"):
            make_adapter("pldsflatopt", _N_HINT, backend="gpu")

    def test_core_service_engine_option(self) -> None:
        svc = CoreService(
            "pldsflatopt", n_hint=_N_HINT, backend="pool", workers=2
        )
        twin = CoreService("pldsflatopt", n_hint=_N_HINT)
        try:
            for batch in _stream():
                svc.apply_batch(batch)
                twin.apply_batch(batch)
            assert svc.coreness_map() == twin.coreness_map()
            assert svc._adapter.tracker.dispatches > 0
        finally:
            svc._adapter.tracker.close()

    def test_pool_backend_rejects_bad_workers(self) -> None:
        with pytest.raises(ValueError, match="workers"):
            PoolBackend(workers=0)


class TestPoolWorkerVisibility:
    """Worker-level telemetry (ISSUE 9): every pool dispatch publishes
    per-worker ``engine.pool.*{worker=i}`` series and a ``pool.dispatch``
    span, without perturbing the bit-identical-to-simulated contract."""

    @staticmethod
    def _walk(spans):
        for span in spans:
            yield span
            yield from TestPoolWorkerVisibility._walk(span.children)

    def test_worker_series_and_dispatch_spans(self) -> None:
        serial = _run_flat(seed=1234, group_shrink=50)
        with collecting() as reg, tracing() as tracer:
            with PoolBackend(workers=2) as pool:
                parallel = _run_flat(tracker=pool, seed=1234, group_shrink=50)
                assert pool.dispatches > 0
                dispatches = pool.dispatches
        # Telemetry never perturbs the computation.
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert (parallel.tracker.work, parallel.tracker.depth) == (
            serial.tracker.work,
            serial.tracker.depth,
        )
        counters, gauges, _ = reg.flat_series()
        assert counters["engine.pool.dispatches"] == dispatches
        workers = sorted(
            dict(split_series_key(key)[1])["worker"]
            for key in counters
            if key.startswith("engine.pool.tasks{")
        )
        assert workers and workers[0] == "0"
        for worker in workers:
            assert counters[f"engine.pool.tasks{{worker={worker}}}"] > 0
            lo = gauges[f"engine.pool.slot_lo{{worker={worker}}}"]
            hi = gauges[f"engine.pool.slot_hi{{worker={worker}}}"]
            assert 0 <= lo < hi
        assert gauges["engine.pool.slot_lo{worker=0}"] == 0
        spans = [
            s for s in self._walk(tracer.finish()) if s.name == "pool.dispatch"
        ]
        assert len(spans) == dispatches
        assert all(
            s.attrs["items"] > 0 and s.attrs["workers"] >= 1 for s in spans
        )

    def test_simulated_backend_emits_no_worker_series(self) -> None:
        with collecting() as reg:
            _run_flat(seed=1234, group_shrink=50)
        counters, gauges, _ = reg.flat_series()
        assert not any(k.startswith("engine.pool.") for k in counters)
        assert not any(k.startswith("engine.pool.") for k in gauges)


class TestJumpRiseDispatch:
    """The insertion-phase jump-rise scan (ISSUE 10): pool-dispatched
    desire evaluation with a conflict-aware apply, bit-identical to the
    sequential cascade."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_jump_rise_matches_serial(self, seed: int) -> None:
        serial = _run_flat(seed=seed, **JUMP_KW)
        with PoolBackend(workers=2, min_dispatch=1) as pool:
            parallel = _run_flat(tracker=pool, seed=seed, **JUMP_KW)
            assert pool.dispatches > 0, "pool backend never dispatched"
            assert pool.fallbacks == 0
        record = PLDS(n_hint=_N_HINT, **JUMP_KW)
        for batch in _stream(seed=seed):
            record.update(batch)
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert parallel.coreness_estimates() == record.coreness_estimates()
        assert _meters(parallel.tracker) == _meters(serial.tracker)
        assert _meters(parallel.tracker) == _meters(record.tracker)

    def test_insert_only_stream_dispatches(self) -> None:
        """An insertion-only stream never runs the deletion-phase
        consider scan, so every dispatch on it is the jump-rise scan."""
        edges = barabasi_albert(120, 4, seed=5)
        batches = [
            Batch(insertions=edges[i : i + 40])
            for i in range(0, len(edges), 40)
        ]

        def run(tracker=None) -> PLDSFlat:
            plds = PLDSFlat(n_hint=150, tracker=tracker, **JUMP_KW)
            for batch in batches:
                plds.update(batch)
            return plds

        serial = run()
        with PoolBackend(workers=2, min_dispatch=1) as pool:
            parallel = run(tracker=pool)
            assert pool.dispatches > 0, "rise scan never dispatched"
            assert pool.fallbacks == 0
        assert parallel.coreness_estimates() == serial.coreness_estimates()
        assert _meters(parallel.tracker) == _meters(serial.tracker)


class TestShardedBackendMatrix:
    """Backend × shard matrix (ISSUE 10 satellite): the kernels'
    post-ghost-exchange desire evaluation dispatches through per-shard
    child backends, golden-checked against the simulated run."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_ghost_exchange_matches_simulated(
        self, shards: int, seed: int
    ) -> None:
        sim = _run_sharded(shards, tracker=WorkDepthTracker(), seed=seed)
        with PoolBackend(workers=2, min_dispatch=1) as pool:
            par = _run_sharded(shards, tracker=pool, seed=seed)
            assert pool.dispatches > 0, "no kernel scan dispatched"
            assert pool.fallbacks == 0
        assert par.coreness_estimates() == sim.coreness_estimates()
        assert _meters(par.tracker) == _meters(sim.tracker)

    def test_registry_sharded_pool_backend(self) -> None:
        sim = make_adapter("plds-sharded", _N_HINT, shards=4)
        par = make_adapter(
            "plds-sharded", _N_HINT, shards=4, backend="pool", workers=2
        )
        try:
            for batch in _stream():
                sim.update(batch)
                par.update(batch)
            assert par.estimates() == sim.estimates()
            assert (par.cost.work, par.cost.depth) == (
                sim.cost.work,
                sim.cost.depth,
            )
            assert par.tracker.dispatches > 0
            assert par.tracker.fallbacks == 0
        finally:
            par.tracker.close()

    def test_sharded_fault_parity(self) -> None:
        """The engine.parfor fault site fires in the same sequence on
        both backends through the sharded stack: the seeded plan trips
        at the same update (it escapes the coordinator — only
        ``shard.apply`` faults are retried) and the partial state is
        bit-identical."""

        def run(tracker) -> tuple[int, Coordinator]:
            plan = FaultPlan([FaultPoint("engine.parfor", 12)])
            coord = Coordinator(_N_HINT, shards=4, tracker=tracker)
            with faults.active(plan):
                for i, batch in enumerate(_stream()):
                    try:
                        coord.update(batch)
                    except InjectedFault:
                        assert plan.fired == [
                            FaultPoint("engine.parfor", 12)
                        ]
                        return i, coord
            pytest.fail("fault plan never fired")

        sim_at, sim = run(WorkDepthTracker())
        with PoolBackend(workers=2, min_dispatch=1) as pool:
            par_at, par = run(pool)
        assert par_at == sim_at, "fault tripped at different updates"
        assert par.coreness_estimates() == sim.coreness_estimates()
        assert _meters(par.tracker) == _meters(sim.tracker)


class TestDirtyRangeProtocol:
    """The resident image's delta protocol (ISSUE 10): flushed ranges
    cover exactly the touched slots with a bounded over-approximation,
    and structural events fall back to a full-image rebuild."""

    def test_stream_mixes_full_and_delta_flushes(self) -> None:
        with PoolBackend(workers=1, min_dispatch=1) as pool:
            plds = PLDSFlat(n_hint=_N_HINT, tracker=pool, **JUMP_KW)
            for batch in _stream():
                plds.update(batch)
            img = plds._pool_image
            assert img is not None
            assert img.full_flushes >= 1
            assert img.delta_flushes >= 1
            assert 0 < pool.bytes_copied < pool.bytes_full_equiv

    def test_delta_ranges_cover_touched_slots(self, monkeypatch) -> None:
        """Every delta flush covers each dirty slot, over-approximates
        by at most GAP+1 slots per touched slot, and leaves the segment
        byte-identical to the engine's level vector (no misses)."""
        orig = poolmod.ResidentImage.flush
        seen = {"deltas": 0}

        def checked_flush(self, source):
            full = source._pool_renumber or self._levels_seg is None
            touched = sorted(set(source._pool_dirty_slots))
            out = orig(self, source)
            if not full:
                seen["deltas"] += 1
                ranges = self.last_ranges
                for slot in touched:
                    assert any(lo <= slot < hi for lo, hi in ranges), (
                        f"dirty slot {slot} not covered by {ranges}"
                    )
                covered = sum(hi - lo for lo, hi in ranges)
                bound = len(touched) * (poolmod.ResidentImage.GAP + 1)
                assert covered <= bound
                n = self._n
                segment = bytes(self._levels_seg.buf[: 4 * n])
                assert segment == source.pool_levels_array().tobytes()
            return out

        monkeypatch.setattr(poolmod.ResidentImage, "flush", checked_flush)
        with PoolBackend(workers=1, min_dispatch=1) as pool:
            plds = PLDSFlat(n_hint=_N_HINT, tracker=pool, **JUMP_KW)
            for batch in _stream():
                plds.update(batch)
        assert seen["deltas"] > 0, "no delta flush exercised the check"

    def test_structural_events_force_full_flush(self) -> None:
        with PoolBackend(workers=1, min_dispatch=1) as pool:
            plds = PLDSFlat(n_hint=16, tracker=pool, group_shrink=50)
            plds.update(
                Batch(
                    insertions=[(0, 1), (1, 2), (2, 3), (0, 2), (1, 3), (0, 3)]
                )
            )
            img = pool.resident_image(plds)
            img.flush(plds)  # numbering fresh from the insertions
            assert img.last_ranges == [(0, img._n)]
            full_before = img.full_flushes

            # Level-only change: coalesced ranges, no rebuild.
            plds._pool_note_ids([1, 2])
            img.flush(plds)
            assert img.full_flushes == full_before
            assert img.delta_flushes >= 1
            assert img.last_ranges and img.last_ranges != [(0, img._n)]

            # Adjacency-only change: CSR rewrite, levels still deltas.
            plds._pool_adj_dirty = True
            img.flush(plds)
            assert img.full_flushes == full_before
            assert img.last_ranges == []

            # Slot renumbering (compaction/restore): full rebuild.
            plds._pool_renumber = True
            img.flush(plds)
            assert img.full_flushes == full_before + 1
            assert img.last_ranges == [(0, img._n)]

    def test_coalesce_bridges_small_gaps_only(self) -> None:
        assert poolmod._coalesce([], 4) == []
        assert poolmod._coalesce([3], 4) == [(3, 4)]
        assert poolmod._coalesce([0, 2, 4], 4) == [(0, 5)]
        assert poolmod._coalesce([0, 10], 4) == [(0, 1), (10, 11)]
        assert poolmod._coalesce([5, 5, 1, 1], 4) == [(1, 6)]


class TestSegmentCleanup:
    """Segment lifecycle (ISSUE 10 satellite): exception and interrupt
    paths unlink every shared segment; close is idempotent and the
    backend stays usable afterwards."""

    def test_interrupt_path_unlinks_segments(self) -> None:
        img = None
        names: list[str] = []
        try:
            with PoolBackend(workers=1, min_dispatch=1) as pool:
                plds = PLDSFlat(
                    n_hint=_N_HINT, tracker=pool, group_shrink=50
                )
                for batch in _stream():
                    plds.update(batch)
                img = plds._pool_image
                assert img is not None and not img.closed
                names = [seg.name for seg in img._segments]
                assert names
                raise KeyboardInterrupt
        except KeyboardInterrupt:
            pass
        assert img.closed
        for name in names:
            with pytest.raises(FileNotFoundError):
                poolmod.shared_memory.SharedMemory(name=name)

    def test_close_is_idempotent_and_recoverable(self) -> None:
        pool = PoolBackend(workers=1, min_dispatch=1)
        try:
            plds = PLDSFlat(n_hint=_N_HINT, tracker=pool, group_shrink=50)
            batches = list(_stream())
            for batch in batches[:6]:
                plds.update(batch)
            img = plds._pool_image
            assert img is not None
            pool.close()
            assert img.closed
            assert plds._pool_image is None
            pool.close()  # second close is a no-op
            # The backend recovers: the next dispatch re-creates the
            # image and a fresh executor.
            for batch in batches[6:]:
                plds.update(batch)
            assert plds._pool_image is not None
            assert not plds._pool_image.closed
        finally:
            pool.close()

    def test_no_resource_tracker_warnings(self) -> None:
        """A pool-backed run leaves nothing for the resource tracker to
        complain about at interpreter exit (the regression this guards:
        segments leaked on non-close exits)."""
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "sys.path.insert(0, sys.argv[2])\n"
            "from repro.core.plds_flat import PLDSFlat\n"
            "from repro.parallel.pool import PoolBackend\n"
            "from tests.test_golden_parity import _N_HINT, _stream\n"
            "with PoolBackend(workers=1, min_dispatch=1) as pool:\n"
            "    plds = PLDSFlat(n_hint=_N_HINT, tracker=pool,"
            " group_shrink=50)\n"
            "    for batch in _stream():\n"
            "        plds.update(batch)\n"
            "    assert pool.dispatches > 0\n"
        )
        repo = os.path.dirname(src)
        proc = subprocess.run(
            [sys.executable, "-c", script, src, repo],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stderr
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr


class TestPoolBytesAccounting:
    """Per-dispatch bytes-copied accounting (ISSUE 10 satellite): the
    backend's counters, the ``engine.pool.*`` series, and the bench
    artifact all agree."""

    def test_bytes_series_match_backend_counters(self) -> None:
        with collecting() as reg:
            with PoolBackend(workers=2, min_dispatch=1) as pool:
                _run_flat(tracker=pool, **JUMP_KW)
                stats = pool.pool_stats()
        counters, _, _ = reg.flat_series()
        assert stats["bytes_copied"] > 0
        assert counters["engine.pool.bytes_copied"] == stats["bytes_copied"]
        assert stats["dirty_ranges"] > 0
        assert counters["engine.pool.dirty_ranges"] == stats["dirty_ranges"]
        # The delta protocol beats a full-image flush per dispatch.
        assert stats["bytes_copied"] < stats["bytes_full_equiv"]
        assert (
            stats["mean_bytes_per_dispatch"]
            < stats["mean_bytes_full_equiv"]
        )

    def test_bytes_counter_lands_on_timeline(self) -> None:
        from repro.obs.timeline import Timeline

        with collecting():
            timeline = Timeline()
            with PoolBackend(workers=1, min_dispatch=1) as pool:
                _run_flat(tracker=pool, **JUMP_KW)
            sample = timeline.sample(tick=1.0)
        assert sample is not None
        assert sample["counters"]["engine.pool.bytes_copied"] > 0
        assert sample["counters"]["engine.pool.dirty_ranges"] > 0

    def test_bench_artifact_carries_pool_stats(self) -> None:
        from repro.bench.perfsuite import BenchReport, run_suite

        entries = run_suite(
            scale=0.02,
            algos=("pldsflatopt",),
            workloads=("powerlaw-del",),
            backend="pool",
            workers=2,
        )
        assert len(entries) == 1
        info = entries[0].pool
        assert info is not None and info["dispatches"] > 0
        assert info["bytes_copied"] > 0
        data = BenchReport("t", 0.02, entries).to_json_dict()
        assert data["entries"][0]["pool"]["dispatches"] == info["dispatches"]

        simulated = run_suite(
            scale=0.02,
            algos=("pldsflatopt",),
            workloads=("powerlaw-del",),
        )
        assert simulated[0].pool is None
        sim_dict = BenchReport("t", 0.02, simulated).to_json_dict()
        assert "pool" not in sim_dict["entries"][0]
