"""Sharded serving stack: parity, isolation, and reconciliation tests.

The headline correctness bar of the sharding PR: the partitioned engine's
coreness estimates must be **bit-identical** to the single-structure PLDS
on every golden-parity workload, for every shard count — the confluence
of the cascade's least/greatest-fixpoint iterations makes the shard
decomposition observationally invisible.  Beyond parity, this module
locks the fault-isolation ladder (a ``shard.apply`` fault rolls back only
the affected shard), the per-round span reconciliation (coordinator round
work == sum of shard work + ghost-exchange messages), snapshot round
trips, and the partitioner's ownership algebra.
"""

from __future__ import annotations

import json

import pytest

from repro.core.plds import PLDS
from repro.faults import FaultPlan, FaultPoint, active
from repro.graphs.dynamic_graph import DynamicGraph
from repro.graphs.io import read_edge_list, write_edge_list
from repro.graphs.streams import Batch
from repro.obs.metrics import MetricsRegistry, collecting
from repro.obs.tracing import Tracer, iter_spans, tracing
from repro.registry import algorithm_spec, make_adapter
from repro.shard import Coordinator, Partitioner

from .test_golden_parity import _stream

pytestmark = pytest.mark.shard

_N_HINT = 100
_SHARD_COUNTS = (1, 2, 4, 7)


def _configs() -> dict[str, dict]:
    return {
        "levelwise": {},
        "jump": {"insertion_strategy": "jump"},
        "pldsopt": {"group_shrink": 50, "insertion_strategy": "jump"},
    }


def _run_mono(n_hint: int = _N_HINT, **kwargs) -> PLDS:
    plds = PLDS(n_hint=n_hint, **kwargs)
    for b in _stream():
        plds.update(b)
    return plds


def _run_sharded(shards: int, n_hint: int = _N_HINT, **kwargs) -> Coordinator:
    coord = Coordinator(n_hint, shards=shards, **kwargs)
    for b in _stream():
        coord.update(b)
    return coord


# ----------------------------------------------------------------------
# Parity: the acceptance bar
# ----------------------------------------------------------------------


class TestGoldenParity:
    @pytest.mark.parametrize("config", sorted(_configs()))
    @pytest.mark.parametrize("shards", _SHARD_COUNTS)
    def test_bit_identical_estimates(self, config: str, shards: int) -> None:
        kwargs = _configs()[config]
        mono = _run_mono(**kwargs)
        coord = _run_sharded(shards, **kwargs)
        assert coord.coreness_estimates() == mono.coreness_estimates(), (
            f"{config} diverged at {shards} shards"
        )
        assert coord.num_edges == mono.num_edges
        assert sorted(coord.edges()) == sorted(mono.edges())

    @pytest.mark.parametrize("shards", _SHARD_COUNTS)
    def test_rebuild_parity(self, shards: int) -> None:
        # Small n_hint forces engine-coordinated rebuilds mid-stream; the
        # rebuilt kernels must stay on the monolithic trajectory.
        mono = _run_mono(n_hint=32)
        coord = _run_sharded(shards, n_hint=32)
        assert coord.coreness_estimates() == mono.coreness_estimates()
        assert coord.engine.n_hint == mono.n_hint

    def test_degree_balanced_parity(self) -> None:
        batches = _stream()
        initial = list(batches[0].insertions)
        mono = PLDS(n_hint=_N_HINT)
        mono.update(Batch(insertions=initial))
        coord = Coordinator(_N_HINT, shards=4, partition="degree")
        coord.initialize(initial)
        for b in batches[1:]:
            mono.update(b)
            coord.update(b)
        assert coord.coreness_estimates() == mono.coreness_estimates()
        assert coord.partitioner.kind == "degree"

    @pytest.mark.parametrize("shards", _SHARD_COUNTS)
    def test_invariants_clean(self, shards: int) -> None:
        coord = _run_sharded(shards)
        assert coord.check_invariants() == []

    def test_metering_deterministic(self) -> None:
        a = _run_sharded(4)
        b = _run_sharded(4)
        assert (a.tracker.work, a.tracker.depth) == (
            b.tracker.work,
            b.tracker.depth,
        )


# ----------------------------------------------------------------------
# Partitioner ownership algebra + io round trip
# ----------------------------------------------------------------------


class TestPartitioner:
    def test_every_edge_has_exactly_one_owner(self) -> None:
        part = Partitioner(4)
        edges = [(u, v) for u in range(20) for v in range(u + 1, 20)]
        for u, v in edges:
            owner = part.owner_of_edge(u, v)
            assert owner == part.owner_of_edge(v, u) == part.owner(min(u, v))
            assert 0 <= owner < 4

    def test_hash_fallback_and_assignment_overlay(self) -> None:
        part = Partitioner(3, assignment={7: 2})
        assert part.owner(7) == 2          # pinned
        assert part.owner(8) == 8 % 3      # fallback
        assert part.assignment_items() == [[7, 2]]

    def test_validation(self) -> None:
        with pytest.raises(ValueError):
            Partitioner(0)
        with pytest.raises(ValueError):
            Partitioner(2, kind="range")
        with pytest.raises(ValueError):
            Partitioner(2, assignment={1: 5})
        with pytest.raises(ValueError):
            Coordinator(10, shards=2, partition="range")

    def test_degree_balanced_spreads_load(self) -> None:
        # A star graph: LPT must put the hub alone-ish, not with spokes.
        edges = [(0, i) for i in range(1, 13)]
        part = Partitioner.degree_balanced(DynamicGraph(edges), 3)
        loads = [0, 0, 0]
        g = DynamicGraph(edges)
        for v in g.vertices():
            loads[part.owner(v)] += g.degree(v)
        assert max(loads) - min(loads) <= g.max_degree()

    def test_io_partition_round_trip(self, tmp_path) -> None:
        batches = _stream()
        live: set[tuple[int, int]] = set()
        for b in batches[:5]:
            live |= set(b.insertions)
            live -= set(b.deletions)
        path = tmp_path / "graph.txt"
        write_edge_list(path, sorted(live))
        edges = read_edge_list(path)
        assert sorted(edges) == sorted(live)

        part = Partitioner.degree_balanced(DynamicGraph(edges), 4)
        # Exactly one owner shard per edge: counting each edge at its
        # owner covers the edge set with no duplicates.
        owned: dict[int, list] = {s: [] for s in range(4)}
        for u, v in edges:
            owned[part.owner_of_edge(u, v)].append((u, v))
        flat = [e for group in owned.values() for e in group]
        assert sorted(flat) == sorted(edges)

        # Feed the same graph through the coordinator: no vertex may be
        # a ghost replica on the shard that owns it.
        coord = Coordinator(_N_HINT, shards=4)
        coord.update(Batch(insertions=sorted(edges)))
        for s, kernel in enumerate(coord.engine.kernels):
            for v in kernel._ghosts:
                assert coord.partitioner.owner(v) != s, (
                    f"vertex {v} is a ghost on its owner shard {s}"
                )
            for v in kernel._vertices:
                assert coord.partitioner.owner(v) == s


# ----------------------------------------------------------------------
# Boundary validation: rejected before any shard mutates
# ----------------------------------------------------------------------


class TestBoundaryValidation:
    def _fresh(self) -> Coordinator:
        coord = Coordinator(_N_HINT, shards=4)
        coord.update(Batch(insertions=[(0, 1), (1, 2), (2, 3)]))
        return coord

    def _state(self, coord: Coordinator) -> list:
        return [
            (sorted(k._vertices), sorted(k.edges()), k._m)
            for k in coord.engine.kernels
        ]

    @pytest.mark.parametrize(
        "batch",
        [
            Batch(insertions=[(4, 5), (-1, 6)]),          # negative id
            Batch(deletions=[(0, -2)]),                   # negative id
            Batch(insertions=[(4, 5), (5, 4)]),           # duplicate insert
            Batch(insertions=[(0, 1)]),                   # already present
            Batch(deletions=[(0, 3)]),                    # not present
            Batch(deletions=[(0, 1), (1, 0)]),            # duplicate delete
            Batch(insertions=[(7, 8)], deletions=[(7, 8)]),  # overlap
        ],
    )
    def test_bad_batch_rejected_before_any_shard_mutates(self, batch) -> None:
        coord = self._fresh()
        before = self._state(coord)
        with pytest.raises(ValueError):
            coord.update(batch)
        assert self._state(coord) == before
        assert coord.check_invariants() == []

    def test_self_loops_dropped_at_the_boundary(self) -> None:
        coord = self._fresh()
        coord.update(Batch(insertions=[(4, 4), (4, 5)]))
        assert coord.has_edge(4, 5)
        assert not coord.has_edge(4, 4)
        assert coord.num_edges == 4


# ----------------------------------------------------------------------
# Fault isolation: shard.apply rolls back only the affected shard
# ----------------------------------------------------------------------


class TestShardFaultIsolation:
    def test_fault_recovers_bit_identical(self) -> None:
        clean = _run_sharded(4)
        plan = FaultPlan([FaultPoint("shard.apply", 2)])
        registry = MetricsRegistry()
        coord = Coordinator(_N_HINT, shards=4)
        with active(plan), collecting(registry):
            for b in _stream():
                coord.update(b)
        assert any(fp.site == "shard.apply" for fp in plan.fired)
        assert coord.coreness_estimates() == clean.coreness_estimates()
        assert coord.check_invariants() == []
        # Exactly the faulted shards rolled back — one rollback per fire.
        rollbacks = sum(
            registry.counter_value("shard.rollbacks", shard=str(s))
            for s in range(4)
        )
        fired = sum(1 for fp in plan.fired if fp.site == "shard.apply")
        assert rollbacks == fired >= 1

    def test_other_shards_keep_state_across_rollback(self) -> None:
        coord = Coordinator(_N_HINT, shards=4)
        coord.update(Batch(insertions=[(0, 1), (2, 3), (5, 6), (8, 9)]))
        kernels = coord.engine.kernels
        before = [
            (dict.fromkeys(k._vertices), sorted(k.edges())) for k in kernels
        ]
        before_levels = [
            {v: k.level(v) for v in k._vertices} for k in kernels
        ]
        # One fault on the very next shard.apply hit: the scatter visits
        # shards in order, so shard 0 faults while 1..3 are untouched.
        plan = FaultPlan([FaultPoint("shard.apply", 1)])
        with active(plan):
            coord.update(Batch(insertions=[(4, 12)]))
        assert [fp.site for fp in plan.fired] == ["shard.apply"]
        # The retry succeeded: the edge landed, and every *other* shard's
        # vertex set is exactly its pre-batch state plus nothing.
        assert coord.has_edge(4, 12)
        for s in (1, 2, 3):
            assert {
                v: kernels[s].level(v) for v in before[s][0]
            } == before_levels[s]
        assert coord.check_invariants() == []

    def test_fault_exhausting_retries_escalates(self) -> None:
        coord = Coordinator(_N_HINT, shards=2, shard_retry_limit=2)
        coord.update(Batch(insertions=[(0, 1)]))
        plan = FaultPlan(
            [FaultPoint("shard.apply", h) for h in range(1, 10)]
        )
        from repro.faults import InjectedFault

        with active(plan):
            with pytest.raises(InjectedFault):
                coord.update(Batch(insertions=[(2, 3)]))
        # The failed scatter left the structure rolled back and clean.
        assert not coord.has_edge(2, 3)
        assert coord.check_invariants() == []


# ----------------------------------------------------------------------
# Span reconciliation: round work == sum of shard work + messages
# ----------------------------------------------------------------------


class TestSpanReconciliation:
    def test_round_spans_reconcile_exactly(self) -> None:
        tracer = Tracer()
        coord = Coordinator(_N_HINT, shards=4)
        with tracing(tracer):
            for b in _stream()[:6]:
                coord.update(b)
        rounds = [
            s for s in iter_spans(tracer.roots) if s.name == "shard.round"
        ]
        assert rounds, "no shard.round spans were recorded"
        for r in rounds:
            shard_work = sum(ch.work for ch in r.children)
            assert r.work == shard_work + r.attrs["messages"], (
                f"round at level {r.attrs.get('level')} does not reconcile"
            )
        assert any(r.attrs["messages"] > 0 for r in rounds)

    def test_spans_carry_shard_identity(self) -> None:
        tracer = Tracer()
        coord = Coordinator(_N_HINT, shards=4)
        with tracing(tracer):
            coord.update(Batch(insertions=[(0, 1), (1, 2), (2, 3), (0, 3)]))
        names = {s.name for s in iter_spans(tracer.roots)}
        assert "coordinator.update" in names
        assert "shard.apply" in names
        applies = [
            s for s in iter_spans(tracer.roots) if s.name == "shard.apply"
        ]
        assert {s.attrs["shard"] for s in applies} <= {0, 1, 2, 3}


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------


class TestSnapshots:
    def test_json_round_trip_and_continued_parity(self) -> None:
        batches = _stream()
        coord = Coordinator(_N_HINT, shards=4)
        mono = PLDS(n_hint=_N_HINT)
        for b in batches[:6]:
            coord.update(b)
            mono.update(b)
        blob = json.dumps(coord.to_snapshot(), sort_keys=True)
        restored = Coordinator.from_snapshot(json.loads(blob))
        assert restored.num_shards == 4
        assert restored.coreness_estimates() == coord.coreness_estimates()
        assert restored.check_invariants() == []
        for b in batches[6:]:
            restored.update(b)
            mono.update(b)
        assert restored.coreness_estimates() == mono.coreness_estimates()

    def test_snapshot_rejects_wrong_format(self) -> None:
        with pytest.raises(ValueError):
            Coordinator.from_snapshot({"format": 99, "sharded": True})


# ----------------------------------------------------------------------
# Registry + service integration
# ----------------------------------------------------------------------


class TestServiceIntegration:
    def test_registry_capabilities(self) -> None:
        spec = algorithm_spec("plds-sharded")
        assert spec.sharded and spec.parallel and spec.snapshot
        assert not spec.exact
        adapter = make_adapter("plds-sharded", _N_HINT, shards=7)
        assert adapter.impl.num_shards == 7

    def test_service_parity_audit_and_restore(self) -> None:
        from repro.service import CoreService

        svc = CoreService("plds-sharded", n_hint=_N_HINT, shards=4)
        ref = CoreService("plds", n_hint=_N_HINT)
        batches = _stream()
        for b in batches[:6]:
            svc.apply_batch(b)
            ref.apply_batch(b)
        assert svc.audit() == []
        snap = svc.snapshot()
        for b in batches[6:]:
            svc.apply_batch(b)
            ref.apply_batch(b)
        assert svc.coreness_map() == ref.coreness_map()
        svc.restore(snap)
        for b in batches[6:]:
            svc.apply_batch(b)
        assert svc.coreness_map() == ref.coreness_map()
        assert svc.audit() == []

    def test_shard_fault_absorbed_below_the_service(self) -> None:
        from repro.service import CoreService

        svc = CoreService("plds-sharded", n_hint=_N_HINT, shards=4)
        ref = CoreService("plds", n_hint=_N_HINT)
        plan = FaultPlan([FaultPoint("shard.apply", 3)])
        with active(plan):
            for b in _stream():
                svc.apply_batch(b)
        for b in _stream():
            ref.apply_batch(b)
        assert any(fp.site == "shard.apply" for fp in plan.fired)
        # The shard-level retry absorbed the fault: the service saw one
        # clean attempt per batch and never rolled the whole engine back.
        assert all(t.attempts == 1 and not t.rolled_back for t in svc.telemetry)
        assert svc.coreness_map() == ref.coreness_map()
        assert svc.audit() == []
