"""Tests for static k-core algorithms (Section 7 and the ExactKCore baseline)."""

from __future__ import annotations

import math

import networkx as nx
import pytest

from repro.graphs.generators import (
    barabasi_albert,
    dense_cluster_graph,
    erdos_renyi,
    grid_2d,
    ring_of_cliques,
)
from repro.parallel.engine import WorkDepthTracker
from repro.static_kcore.approx import approx_coreness_static
from repro.static_kcore.bucketing import ParallelBucketing
from repro.static_kcore.exact import (
    ParallelExactKCore,
    exact_coreness,
    max_coreness,
)

GRAPHS = {
    "er": erdos_renyi(150, 900, seed=1),
    "ba": barabasi_albert(200, 5, seed=2),
    "cliques": ring_of_cliques(8, 6),
    "grid": grid_2d(10, 10),
    "dense": dense_cluster_graph(3, 12, 40, seed=3),
}


class TestBucketing:
    def test_pop_lowest_order(self, tracker):
        b = ParallelBucketing(tracker, [(1, 5), (2, 3), (3, 5)])
        vs, bkt = b.pop_lowest()
        assert (vs, bkt) == ([2], 3)
        vs, bkt = b.pop_lowest()
        assert (sorted(vs), bkt) == ([1, 3], 5)
        assert b.pop_lowest() is None

    def test_update_moves_vertex(self, tracker):
        b = ParallelBucketing(tracker, [(1, 5)])
        b.update_batch([(1, 2)])
        assert b.bucket_of(1) == 2
        vs, bkt = b.pop_lowest()
        assert (vs, bkt) == ([1], 2)

    def test_remove_batch(self, tracker):
        b = ParallelBucketing(tracker, [(1, 1), (2, 1)])
        b.remove_batch([1])
        vs, _ = b.pop_lowest()
        assert vs == [2]

    def test_negative_bucket_rejected(self, tracker):
        b = ParallelBucketing(tracker)
        with pytest.raises(ValueError):
            b.update_batch([(1, -1)])

    def test_len(self, tracker):
        b = ParallelBucketing(tracker, [(i, i) for i in range(5)])
        assert len(b) == 5


class TestExactCoreness:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_matches_networkx(self, name):
        edges = GRAPHS[name]
        expected = dict(nx.core_number(nx.Graph(edges)))
        assert exact_coreness(edges) == expected

    def test_isolated_vertices(self):
        core = exact_coreness([(0, 1)], vertices=[5])
        assert core[5] == 0

    def test_empty_graph(self):
        assert exact_coreness([]) == {}

    def test_max_coreness(self):
        assert max_coreness(exact_coreness(ring_of_cliques(4, 5))) == 4

    def test_pendant_chain_clamp(self):
        # Regression: triangle plus pendant — peeling must clamp upward.
        edges = [(0, 1), (1, 2), (0, 2), (0, 3)]
        core = exact_coreness(edges)
        assert core == {0: 2, 1: 2, 2: 2, 3: 1}


class TestParallelExactKCore:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_matches_sequential(self, name):
        edges = GRAPHS[name]
        result = ParallelExactKCore().run(edges)
        assert result.coreness == exact_coreness(edges)

    def test_rounds_reported(self):
        result = ParallelExactKCore().run(GRAPHS["er"])
        assert result.rounds >= 1

    def test_work_linearish(self):
        algo = ParallelExactKCore()
        edges = GRAPHS["er"]
        algo.run(edges)
        assert algo.tracker.work < 100 * len(edges)

    def test_path_graph_exhibits_deep_peeling(self):
        # A path is the classic rho = Theta(n) case: each exact peeling
        # round only removes the two endpoints.  This is the depth
        # bottleneck of [27] that Algorithm 6 eliminates.
        path = [(i, i + 1) for i in range(200)]
        result = ParallelExactKCore().run(path)
        assert result.rounds >= 100


class TestApproxKCore:
    @pytest.mark.parametrize("name", sorted(GRAPHS))
    def test_approximation_factor(self, name):
        edges = GRAPHS[name]
        eps = 0.5
        res = approx_coreness_static(edges, eps=eps, delta=0.5)
        exact = exact_coreness(edges)
        bound = (2 + eps) * (1 + eps)
        for v, k in exact.items():
            if k == 0:
                continue
            est = res.estimates[v]
            assert est > 0
            ratio = max(est / k, k / est)
            assert ratio <= bound, (name, v, est, k)

    def test_estimates_cover_all_vertices(self):
        edges = GRAPHS["ba"]
        res = approx_coreness_static(edges)
        vs = {x for e in edges for x in e}
        assert set(res.estimates) == vs

    def test_isolated_vertex_zero(self):
        res = approx_coreness_static([(0, 1)], vertices=[9])
        assert res.estimates[9] == 0.0

    def test_rounds_polylog(self):
        # Theorem 3.8's point: rounds are polylog, unlike exact peeling
        # whose round count grows with the peeling depth.
        edges = GRAPHS["dense"]
        n = len({x for e in edges for x in e})
        res = approx_coreness_static(edges, eps=0.5, delta=0.5)
        budget = (math.log(n) / math.log(1.5) + 1) * (
            math.log(n) / math.log(1.5) + 2
        )
        assert res.rounds <= budget

    def test_work_linearish(self):
        tracker = WorkDepthTracker()
        edges = GRAPHS["er"]
        approx_coreness_static(edges, tracker=tracker)
        assert tracker.work < 200 * len(edges)

    def test_depth_below_exact_on_deep_graphs(self):
        # On a long path, exact peeling needs many rounds; approx does not.
        path = [(i, i + 1) for i in range(500)]
        t_exact = WorkDepthTracker()
        ParallelExactKCore(t_exact).run(path)
        t_approx = WorkDepthTracker()
        approx_coreness_static(path, tracker=t_approx)
        assert t_approx.depth <= t_exact.depth * 2

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            approx_coreness_static([(0, 1)], eps=0)
        with pytest.raises(ValueError):
            approx_coreness_static([(0, 1)], delta=-1)

    def test_empty_graph(self):
        res = approx_coreness_static([])
        assert res.estimates == {}
        assert res.rounds == 0
