"""Tests for batch-dynamic vertex colorings (Section 11)."""

from __future__ import annotations

import math
import random

from repro.core.orientation import degeneracy
from repro.framework import (
    create_explicit_coloring_driver,
    create_implicit_coloring_driver,
)
from repro.graphs.generators import barabasi_albert, erdos_renyi, ring_of_cliques
from repro.graphs.streams import Batch


class TestExplicitColoring:
    def test_proper_after_insertions(self):
        driver, col = create_explicit_coloring_driver(n_hint=60)
        edges = erdos_renyi(50, 200, seed=1)
        for i in range(0, len(edges), 40):
            driver.update(Batch(insertions=edges[i : i + 40]))
            assert not col.violations()

    def test_proper_after_deletions(self):
        driver, col = create_explicit_coloring_driver(n_hint=60)
        edges = erdos_renyi(50, 200, seed=1)
        driver.update(Batch(insertions=edges))
        for i in range(0, 120, 30):
            driver.update(Batch(deletions=edges[i : i + 30]))
            assert not col.violations()

    def test_proper_under_mixed_churn(self):
        rng = random.Random(2)
        pool = erdos_renyi(60, 260, seed=3)
        driver, col = create_explicit_coloring_driver(n_hint=70)
        current: set = set()
        for step in range(15):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(20, len(avail)))
            dels = rng.sample(sorted(current), min(10, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert not col.violations(), step

    def test_palette_bound_alpha_log_n(self):
        # Theorem 3.7: O(α log n) colors.
        edges = barabasi_albert(150, 4, seed=4)
        driver, col = create_explicit_coloring_driver(n_hint=160)
        driver.update(Batch(insertions=edges))
        d = degeneracy(edges)
        n = 150
        budget = 60 * max(d, 1) * math.log2(n)
        assert col.colors_used() <= budget

    def test_same_level_palette_disjointness(self):
        driver, col = create_explicit_coloring_driver(n_hint=40)
        driver.update(Batch(insertions=ring_of_cliques(4, 5)))
        for v in driver.plds.vertices():
            level, idx = col.color(v)
            assert level == driver.plds.level(v)
            assert 0 <= idx < col.palette_size(level)

    def test_color_id_unique_per_level_index(self):
        driver, col = create_explicit_coloring_driver(n_hint=40)
        driver.update(Batch(insertions=ring_of_cliques(4, 5)))
        seen = {}
        for v in driver.plds.vertices():
            cid = col.color_id(v)
            pair = col.color(v)
            if cid in seen:
                assert seen[cid] == pair
            seen[cid] = pair

    def test_deterministic_for_seed(self):
        edges = erdos_renyi(30, 90, seed=5)
        a_driver, a = create_explicit_coloring_driver(n_hint=40, seed=9)
        b_driver, b = create_explicit_coloring_driver(n_hint=40, seed=9)
        a_driver.update(Batch(insertions=edges))
        b_driver.update(Batch(insertions=edges))
        assert {v: a.color(v) for v in a_driver.plds.vertices()} == {
            v: b.color(v) for v in b_driver.plds.vertices()
        }

    def test_space_positive(self):
        driver, col = create_explicit_coloring_driver(n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        col.color(0)
        assert col.space_bytes() > 0


class TestImplicitColoring:
    def test_proper_on_full_query(self):
        driver, col = create_implicit_coloring_driver(n_hint=60)
        edges = erdos_renyi(50, 200, seed=6)
        driver.update(Batch(insertions=edges))
        assert not col.violations()

    def test_proper_after_churn(self):
        rng = random.Random(3)
        pool = erdos_renyi(50, 220, seed=7)
        driver, col = create_implicit_coloring_driver(n_hint=60)
        current: set = set()
        for step in range(10):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(25, len(avail)))
            dels = rng.sample(sorted(current), min(12, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert not col.violations(), step

    def test_queries_mutually_consistent(self):
        driver, col = create_implicit_coloring_driver(n_hint=40)
        driver.update(Batch(insertions=erdos_renyi(30, 120, seed=8)))
        vs = sorted(driver.plds.vertices())
        first = col.query(vs[:10])
        second = col.query(vs)  # superset query
        for v, c in first.items():
            assert second[v] == c

    def test_palette_bounded_by_out_degree(self):
        # Colors come from mex over out-neighbors: <= max out-degree + 1,
        # which is O(α) — inside the O(2^α) budget of Theorem 3.5.
        edges = barabasi_albert(120, 4, seed=9)
        driver, col = create_implicit_coloring_driver(n_hint=130)
        driver.update(Batch(insertions=edges))
        colors = col.query(sorted(driver.plds.vertices()))
        max_out = max(
            len(driver.plds.out_neighbors(v)) for v in driver.plds.vertices()
        )
        assert max(colors.values()) <= max_out

    def test_cache_invalidated_on_update(self):
        driver, col = create_implicit_coloring_driver(n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        col.query([0, 1])
        driver.update(Batch(insertions=[(1, 2), (0, 2)]))
        assert not col.violations()

    def test_triangle_uses_three_colors(self):
        driver, col = create_implicit_coloring_driver(n_hint=10)
        driver.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
        colors = col.query([0, 1, 2])
        assert len(set(colors.values())) == 3
