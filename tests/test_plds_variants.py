"""Tests for the PLDS strategy and structure variants (Sections 5.8/6.1)."""

from __future__ import annotations

import random

import pytest

from repro.core.invariants import approximation_violations
from repro.core.orientation import is_acyclic_orientation
from repro.core.plds import PLDS
from repro.graphs.generators import barabasi_albert, erdos_renyi, ring_of_cliques
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations, build_plds

EDGES = erdos_renyi(120, 500, seed=21)


class TestJumpInsertionStrategy:
    def test_invalid_strategy_rejected(self):
        with pytest.raises(ValueError):
            PLDS(n_hint=10, insertion_strategy="teleport")

    @pytest.mark.parametrize("batch_size", [1, 32, 500])
    def test_invariants_hold(self, batch_size):
        plds = build_plds(
            EDGES, batch_size=batch_size, insertion_strategy="jump"
        )
        assert_no_violations(plds, f"jump bs={batch_size}")

    def test_approximation_preserved(self):
        plds = build_plds(EDGES, insertion_strategy="jump")
        exact = exact_coreness(EDGES)
        assert not approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )

    def test_mixed_churn(self):
        rng = random.Random(4)
        plds = PLDS(n_hint=130, insertion_strategy="jump", track_orientation=True)
        current: set = set()
        for step in range(20):
            avail = [e for e in EDGES if e not in current]
            ins = rng.sample(avail, min(25, len(avail)))
            dels = rng.sample(sorted(current), min(12, len(current)))
            plds.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert_no_violations(plds, f"jump churn {step}")
        assert is_acyclic_orientation(list(plds.oriented_edges()))

    def test_jump_moves_multiple_levels_at_once(self):
        # A clique inserted in one batch makes vertices climb many levels;
        # the jump strategy must do so in single moves.
        clique = [(i, j) for i in range(12) for j in range(i + 1, 12)]
        jump = PLDS(n_hint=20, insertion_strategy="jump")
        jump.update(Batch(insertions=clique))
        level = PLDS(n_hint=20)
        level.update(Batch(insertions=clique))
        assert_no_violations(jump)
        # Both land vertices high enough for the same estimates.
        assert jump.coreness_estimates() == level.coreness_estimates()

    def test_jump_never_much_more_work(self):
        # The optimization's point: direct moves avoid re-touching the
        # up-neighborhood at every intermediate level, so jump does at
        # most comparable — usually much less — work than level-by-level.
        edges = barabasi_albert(300, 6, seed=5)
        jump = build_plds(edges, insertion_strategy="jump")
        levelwise = build_plds(edges)
        assert jump.tracker.work <= 1.5 * levelwise.tracker.work


class TestStructureVariants:
    def test_invalid_structure_rejected(self):
        with pytest.raises(ValueError):
            PLDS(n_hint=10, structure="quantum")

    @pytest.mark.parametrize(
        "structure", ["randomized", "deterministic", "space_efficient"]
    )
    def test_each_variant_correct(self, structure):
        plds = build_plds(EDGES, structure=structure)
        assert_no_violations(plds, structure)
        exact = exact_coreness(EDGES)
        assert not approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )

    def test_identical_results_across_variants(self):
        results = []
        for structure in ("randomized", "deterministic", "space_efficient"):
            plds = build_plds(EDGES, structure=structure, shuffle_seed=9)
            results.append(plds.coreness_estimates())
        assert results[0] == results[1] == results[2]

    def test_work_identical_depth_ordered(self):
        costs = {}
        for structure in ("randomized", "deterministic", "space_efficient"):
            plds = build_plds(EDGES, structure=structure, shuffle_seed=9)
            costs[structure] = plds.tracker.cost
        assert (
            costs["randomized"].work
            == costs["deterministic"].work
            == costs["space_efficient"].work
        )
        assert (
            costs["randomized"].depth
            <= costs["deterministic"].depth
            <= costs["space_efficient"].depth
        )

    def test_space_efficient_saves_space(self):
        big = ring_of_cliques(10, 8)
        default = build_plds(big)
        compact = build_plds(big, structure="space_efficient")
        assert compact.space_bytes() < default.space_bytes()

    def test_variant_survives_rebuild(self):
        plds = PLDS(n_hint=4, structure="space_efficient", insertion_strategy="jump")
        plds.update(Batch(insertions=erdos_renyi(40, 100, seed=3)))
        assert plds.structure == "space_efficient"
        assert plds.insertion_strategy == "jump"
        assert_no_violations(plds)
