"""Tests for the low out-degree orientation (Section 5.7, Corollary 3.3)."""

from __future__ import annotations

import pytest

from repro.core.orientation import (
    degeneracy,
    is_acyclic_orientation,
    max_out_degree,
    out_degrees,
)
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    ring_of_cliques,
)
from repro.graphs.streams import Batch

from .conftest import build_plds


class TestHelpers:
    def test_out_degrees(self):
        deg = out_degrees([(0, 1), (0, 2), (1, 2)])
        assert deg == {0: 2, 1: 1, 2: 0}

    def test_max_out_degree_empty(self):
        assert max_out_degree([]) == 0

    def test_acyclic_detects_cycle(self):
        assert not is_acyclic_orientation([(0, 1), (1, 2), (2, 0)])

    def test_acyclic_accepts_dag(self):
        assert is_acyclic_orientation([(0, 1), (1, 2), (0, 2)])

    def test_degeneracy_of_clique(self):
        clique = [(i, j) for i in range(6) for j in range(i + 1, 6)]
        assert degeneracy(clique) == 5

    def test_degeneracy_of_tree(self):
        assert degeneracy([(0, 1), (1, 2), (2, 3)]) == 1

    def test_degeneracy_of_grid(self):
        assert degeneracy(grid_2d(8, 8)) == 2

    def test_degeneracy_empty(self):
        assert degeneracy([]) == 0


class TestPLDSOrientation:
    @pytest.mark.parametrize(
        "edges",
        [
            erdos_renyi(100, 400, seed=1),
            barabasi_albert(150, 4, seed=2),
            ring_of_cliques(6, 7),
            grid_2d(10, 10),
        ],
        ids=["er", "ba", "cliques", "grid"],
    )
    def test_orientation_acyclic(self, edges):
        plds = build_plds(edges, track_orientation=True)
        assert is_acyclic_orientation(list(plds.oriented_edges()))

    @pytest.mark.parametrize(
        "edges",
        [
            erdos_renyi(100, 400, seed=1),
            barabasi_albert(150, 4, seed=2),
            ring_of_cliques(6, 7),
            grid_2d(10, 10),
        ],
        ids=["er", "ba", "cliques", "grid"],
    )
    def test_out_degree_bounded_by_corollary(self, edges):
        # Corollary 3.3: out-degree <= (2+3/λ)(1+δ)^2 * d + O(1) where d is
        # the degeneracy; with δ=0.4, λ=3 the coefficient is < 6.
        plds = build_plds(edges, track_orientation=True)
        d = degeneracy(edges)
        got = max_out_degree(list(plds.oriented_edges()))
        bound = plds.upper_coeff * (1 + plds.delta) ** 2 * max(d, 1) + 1
        assert got <= bound, (got, bound, d)

    def test_orientation_stays_acyclic_under_churn(self):
        edges = erdos_renyi(80, 320, seed=3)
        plds = build_plds(edges, track_orientation=True)
        plds.update(Batch(deletions=edges[:100]))
        assert is_acyclic_orientation(list(plds.oriented_edges()))
        plds.update(Batch(insertions=edges[:50]))
        assert is_acyclic_orientation(list(plds.oriented_edges()))

    def test_out_plus_in_equals_degree(self):
        plds = build_plds(erdos_renyi(60, 240, seed=4), track_orientation=True)
        for v in plds.vertices():
            assert len(plds.out_neighbors(v)) + len(plds.in_neighbors(v)) == (
                plds.degree(v)
            )

    def test_amortized_flips_bounded(self):
        # Theorem 3.2: O(|B| log^2 n) amortized flips.
        edges = erdos_renyi(100, 400, seed=6)
        plds = build_plds(edges[:200], track_orientation=True)
        total_flips = 0
        for i in range(200, 400, 20):
            res = plds.update(Batch(insertions=edges[i : i + 20]))
            total_flips += len(res.flipped)
        import math

        log2n = math.log2(100) ** 2
        assert total_flips <= 200 * log2n
