"""Unit tests for the metered parallel hash tables."""

from __future__ import annotations

from repro.parallel.hashtable import (
    LOG_STAR_DEPTH,
    ParallelHashMap,
    ParallelHashSet,
)


class TestParallelHashSet:
    def test_construct_with_items(self, tracker):
        s = ParallelHashSet(tracker, [1, 2, 3])
        assert len(s) == 3

    def test_add_discard_contains(self, tracker):
        s = ParallelHashSet(tracker)
        s.add(7)
        assert 7 in s
        s.discard(7)
        assert 7 not in s

    def test_discard_missing_is_noop(self, tracker):
        s = ParallelHashSet(tracker)
        s.discard(99)
        assert len(s) == 0

    def test_add_batch(self, tracker):
        s = ParallelHashSet(tracker)
        s.add_batch(range(10))
        assert len(s) == 10

    def test_batch_depth_is_log_star(self, tracker):
        s = ParallelHashSet(tracker)
        before = tracker.depth
        s.add_batch(range(100))
        assert tracker.depth - before == LOG_STAR_DEPTH

    def test_batch_work_is_linear(self, tracker):
        s = ParallelHashSet(tracker)
        before = tracker.work
        s.add_batch(range(100))
        assert tracker.work - before == 100

    def test_discard_batch(self, tracker):
        s = ParallelHashSet(tracker, range(10))
        s.discard_batch([0, 1, 2, 99])
        assert len(s) == 7

    def test_contains_batch(self, tracker):
        s = ParallelHashSet(tracker, [1, 3])
        assert s.contains_batch([1, 2, 3]) == [True, False, True]

    def test_iteration_and_bool(self, tracker):
        s = ParallelHashSet(tracker, [5])
        assert bool(s)
        assert list(s) == [5]

    def test_as_set_is_live_view(self, tracker):
        s = ParallelHashSet(tracker, [1])
        s.add(2)
        assert s.as_set() == {1, 2}


class TestParallelHashMap:
    def test_set_get(self, tracker):
        m = ParallelHashMap(tracker)
        m["a"] = 1
        assert m["a"] == 1

    def test_contains_and_get_default(self, tracker):
        m = ParallelHashMap(tracker)
        assert "x" not in m
        assert m.get("x", -1) == -1

    def test_delete(self, tracker):
        m = ParallelHashMap(tracker)
        m["a"] = 1
        del m["a"]
        assert "a" not in m

    def test_set_batch(self, tracker):
        m = ParallelHashMap(tracker)
        m.set_batch([(i, i * i) for i in range(5)])
        assert m[3] == 9

    def test_delete_batch_ignores_missing(self, tracker):
        m = ParallelHashMap(tracker)
        m.set_batch([(1, 1), (2, 2)])
        m.delete_batch([2, 3])
        assert len(m) == 1

    def test_items_iteration(self, tracker):
        m = ParallelHashMap(tracker)
        m.set_batch([(1, "a")])
        assert list(m.items()) == [(1, "a")]
        assert list(m) == [1]

    def test_batch_costs(self, tracker):
        m = ParallelHashMap(tracker)
        before = tracker.cost
        m.set_batch([(i, i) for i in range(50)])
        delta = tracker.delta(before)
        assert delta.work == 50
        assert delta.depth == LOG_STAR_DEPTH
