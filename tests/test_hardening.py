"""Hardening tests: odd inputs, determinism, and batch-validation atomicity."""

from __future__ import annotations

import random

import pytest

from repro.core.plds import PLDS
from repro.framework import create_clique_driver, create_matching_driver
from repro.graphs.generators import erdos_renyi
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations, build_plds


class TestArbitraryVertexIds:
    def test_huge_sparse_ids(self):
        base = 10**12
        edges = [(base + 2 * i, base + 2 * i + 1) for i in range(20)]
        edges += [(base, base + 3), (base + 1, base + 2)]
        plds = PLDS(n_hint=64)
        plds.update(Batch(insertions=edges))
        assert_no_violations(plds)
        assert plds.coreness_estimate(base) >= 1

    def test_negative_ids(self):
        plds = PLDS(n_hint=16)
        plds.update(Batch(insertions=[(-5, -2), (-2, 7), (-5, 7)]))
        assert_no_violations(plds)
        exact = exact_coreness([(-5, -2), (-2, 7), (-5, 7)])
        assert exact[-5] == 2
        assert plds.coreness_estimate(-5) > 0

    def test_framework_with_sparse_ids(self):
        driver, m = create_matching_driver(n_hint=32)
        driver.update(Batch(insertions=[(1000, 2000), (2000, 3000)]))
        assert not m.violations()


class TestBatchValidationAtomicity:
    def test_invalid_batch_rejected_before_mutation(self):
        plds = build_plds([(0, 1), (1, 2)])
        snapshot = plds.to_snapshot()
        with pytest.raises(ValueError):
            plds.update(Batch(insertions=[(5, 6), (0, 1)]))  # (0,1) exists
        assert plds.to_snapshot() == snapshot  # nothing changed

    def test_duplicate_insertions_in_batch_rejected(self):
        plds = PLDS(n_hint=8)
        with pytest.raises(ValueError):
            plds.update(Batch(insertions=[(0, 1), (1, 0)]))

    def test_duplicate_deletions_in_batch_rejected(self):
        plds = build_plds([(0, 1)])
        with pytest.raises(ValueError):
            plds.update(Batch(deletions=[(0, 1), (1, 0)]))

    def test_insert_and_delete_same_edge_rejected(self):
        plds = PLDS(n_hint=8)
        with pytest.raises(ValueError):
            plds.update(Batch(insertions=[(0, 1)], deletions=[(0, 1)]))

    def test_delete_missing_rejected_before_mutation(self):
        plds = build_plds([(0, 1)])
        with pytest.raises(ValueError):
            plds.update(Batch(insertions=[(2, 3)], deletions=[(4, 5)]))
        assert not plds.has_edge(2, 3)  # insertion did not happen


class TestDeterminism:
    def test_plds_fully_deterministic(self):
        edges = erdos_renyi(80, 320, seed=9)

        def run():
            plds = PLDS(n_hint=90, track_orientation=True)
            rng = random.Random(3)
            order = list(edges)
            rng.shuffle(order)
            for i in range(0, len(order), 37):
                plds.update(Batch(insertions=order[i : i + 37]))
            plds.update(Batch(deletions=order[:100]))
            return plds.to_snapshot()

        assert run() == run()

    def test_clique_counter_deterministic(self):
        edges = erdos_renyi(40, 160, seed=10)

        def run():
            driver, c = create_clique_driver(n_hint=50, k=3)
            for i in range(0, len(edges), 40):
                driver.update(Batch(insertions=edges[i : i + 40]))
            return c.count, driver.tracker.work

        assert run() == run()

    def test_matching_deterministic_for_seed(self):
        edges = erdos_renyi(40, 160, seed=11)

        def run(seed):
            driver, m = create_matching_driver(n_hint=50, seed=seed)
            driver.update(Batch(insertions=edges))
            return sorted(m.matching())

        assert run(5) == run(5)


class TestEmptyAndDegenerateBatches:
    def test_empty_batch_is_noop(self):
        plds = build_plds([(0, 1)])
        before = plds.to_snapshot()
        plds.update(Batch())
        assert plds.to_snapshot() == before

    def test_single_vertex_graph(self):
        plds = PLDS(n_hint=2)
        plds.insert_vertices([0])
        assert plds.coreness_estimate(0) == 0.0
        assert not plds.check_invariants()

    def test_two_node_toggle_many_times(self):
        plds = PLDS(n_hint=4, track_orientation=True)
        for _ in range(30):
            plds.update(Batch(insertions=[(0, 1)]))
            plds.update(Batch(deletions=[(0, 1)]))
        assert plds.num_edges == 0
        assert not plds.check_invariants()
