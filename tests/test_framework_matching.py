"""Tests for batch-dynamic maximal matching (Section 9)."""

from __future__ import annotations

import random

import pytest

from repro.framework import create_matching_driver, static_maximal_matching
from repro.graphs.generators import erdos_renyi, ring_of_cliques
from repro.graphs.streams import Batch


class TestStaticMaximalMatching:
    def test_is_matching(self, tracker):
        edges = erdos_renyi(50, 200, seed=1)
        m = static_maximal_matching(tracker, edges, seed=0)
        used: set[int] = set()
        for u, v in m:
            assert u not in used and v not in used
            used.update((u, v))

    def test_is_maximal(self, tracker):
        edges = erdos_renyi(50, 200, seed=1)
        m = static_maximal_matching(tracker, edges, seed=0)
        matched = {x for e in m for x in e}
        for u, v in edges:
            assert u in matched or v in matched

    def test_forbidden_vertices_excluded(self, tracker):
        m = static_maximal_matching(tracker, [(0, 1), (1, 2)], forbidden=[1])
        assert m == set()

    def test_empty(self, tracker):
        assert static_maximal_matching(tracker, []) == set()

    def test_deterministic_for_seed(self, tracker):
        edges = erdos_renyi(40, 120, seed=2)
        a = static_maximal_matching(tracker, edges, seed=5)
        b = static_maximal_matching(tracker, edges, seed=5)
        assert a == b

    def test_single_edge(self, tracker):
        assert static_maximal_matching(tracker, [(3, 7)]) == {(3, 7)}


class TestDynamicMatching:
    def test_insert_only(self):
        driver, m = create_matching_driver(n_hint=60)
        edges = erdos_renyi(50, 150, seed=3)
        for i in range(0, len(edges), 30):
            driver.update(Batch(insertions=edges[i : i + 30]))
            assert not m.violations()

    def test_delete_only(self):
        driver, m = create_matching_driver(n_hint=60)
        edges = erdos_renyi(50, 150, seed=3)
        driver.update(Batch(insertions=edges))
        for i in range(0, len(edges), 25):
            driver.update(Batch(deletions=edges[i : i + 25]))
            assert not m.violations()
        assert m.matching() == set()

    def test_mixed_churn(self):
        rng = random.Random(0)
        pool = erdos_renyi(60, 250, seed=4)
        driver, m = create_matching_driver(n_hint=70)
        current: set = set()
        for step in range(20):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(18, len(avail)))
            dels = rng.sample(sorted(current), min(9, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert not m.violations(), step

    def test_matched_edge_deletion_rematches(self):
        # A star: deleting the matched edge must rematch the center.
        driver, m = create_matching_driver(n_hint=10)
        driver.update(Batch(insertions=[(0, 1), (0, 2), (0, 3)]))
        (a, b), = m.matching()
        assert 0 in (a, b)
        driver.update(Batch(deletions=[(a, b)]))
        assert not m.violations()
        assert m.is_matched(0)

    def test_matching_grows_with_disjoint_edges(self):
        driver, m = create_matching_driver(n_hint=20)
        driver.update(Batch(insertions=[(0, 1), (2, 3), (4, 5)]))
        assert len(m.matching()) == 3

    def test_single_batch_full_graph(self):
        edges = ring_of_cliques(5, 6)
        driver, m = create_matching_driver(n_hint=40)
        driver.update(Batch(insertions=edges))
        assert not m.violations()
        # a maximal matching in 5 disjoint 6-cliques has >= 2 edges/clique
        assert len(m.matching()) >= 10

    def test_work_scales_with_batch_not_graph(self):
        edges = erdos_renyi(200, 800, seed=5)
        driver, m = create_matching_driver(n_hint=210)
        driver.update(Batch(insertions=edges[:790]))
        before = driver.tracker.work
        driver.update(Batch(insertions=edges[790:]))
        small_batch_work = driver.tracker.work - before
        assert small_batch_work < before / 4

    def test_space_positive(self):
        driver, m = create_matching_driver(n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        assert m.space_bytes() > 0

    def test_is_matched_api(self):
        driver, m = create_matching_driver(n_hint=10)
        driver.update(Batch(insertions=[(0, 1)]))
        assert m.is_matched(0) and m.is_matched(1)
        assert not m.is_matched(5)
