"""Tests for the parallel level data structure (PLDS) — paper Section 5."""

from __future__ import annotations

import random

import pytest

from repro.core.invariants import approximation_violations, structure_matches_edges
from repro.core.plds import PLDS
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    grid_2d,
    ring_of_cliques,
)
from repro.graphs.streams import Batch
from repro.static_kcore.exact import exact_coreness

from .conftest import assert_no_violations, build_plds


class TestStructureArithmetic:
    def test_group_number(self):
        p = PLDS(n_hint=100, delta=0.4)
        lpg = p.levels_per_group
        assert p.group_number(0) == 0
        assert p.group_number(lpg - 1) == 0
        assert p.group_number(lpg) == 1

    def test_inv1_bound_grows_geometrically(self):
        p = PLDS(n_hint=100, delta=0.4, lam=3.0)
        lpg = p.levels_per_group
        assert p.inv1_bound(0) == pytest.approx(3.0)
        assert p.inv1_bound(lpg) == pytest.approx(3.0 * 1.4)

    def test_inv2_threshold(self):
        p = PLDS(n_hint=100, delta=0.4)
        lpg = p.levels_per_group
        assert p.inv2_threshold(1) == pytest.approx(1.0)
        assert p.inv2_threshold(lpg + 1) == pytest.approx(1.4)

    def test_top_level_bound_exceeds_n(self):
        p = PLDS(n_hint=1000)
        assert p.inv1_bound(p.num_levels - 1) > 2 * 1000

    def test_group_shrink_reduces_levels(self):
        full = PLDS(n_hint=1000)
        opt = PLDS(n_hint=1000, group_shrink=50)
        assert opt.num_levels < full.num_levels
        assert opt.levels_per_group == max(1, -(-full.levels_per_group // 50))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PLDS(n_hint=10, delta=0)
        with pytest.raises(ValueError):
            PLDS(n_hint=10, lam=-1)
        with pytest.raises(ValueError):
            PLDS(n_hint=10, group_shrink=0)

    def test_approximation_factor(self):
        p = PLDS(n_hint=10, delta=0.4, lam=3.0)
        assert p.approximation_factor() == pytest.approx(4.2)


class TestBasicUpdates:
    def test_empty_structure(self):
        p = PLDS(n_hint=10)
        assert p.num_edges == 0
        assert p.coreness_estimate(3) == 0.0

    def test_single_edge(self):
        p = PLDS(n_hint=10)
        p.update(Batch(insertions=[(0, 1)]))
        assert p.has_edge(0, 1)
        assert p.num_edges == 1
        assert_no_violations(p)

    def test_duplicate_insert_rejected(self):
        p = PLDS(n_hint=10)
        p.update(Batch(insertions=[(0, 1)]))
        with pytest.raises(ValueError):
            p.update(Batch(insertions=[(0, 1)]))

    def test_self_loop_rejected(self):
        p = PLDS(n_hint=10)
        with pytest.raises(ValueError):
            p.update(Batch(insertions=[(2, 2)]))

    def test_delete_missing_rejected(self):
        p = PLDS(n_hint=10)
        with pytest.raises(ValueError):
            p.update(Batch(deletions=[(0, 1)]))

    def test_insert_then_delete_roundtrip(self):
        p = PLDS(n_hint=10)
        p.update(Batch(insertions=[(0, 1), (1, 2)]))
        p.update(Batch(deletions=[(0, 1), (1, 2)]))
        assert p.num_edges == 0
        assert p.coreness_estimate(1) == 0.0
        assert_no_violations(p)

    def test_isolated_vertices_at_level_zero(self):
        p = PLDS(n_hint=10)
        p.insert_vertices([5, 6])
        assert p.level(5) == 0
        assert p.degree(5) == 0

    def test_mixed_batch_order_insertions_first(self):
        # Algorithm 1 applies insertions before deletions.
        p = PLDS(n_hint=10)
        p.update(Batch(insertions=[(0, 1)]))
        p.update(Batch(insertions=[(1, 2)], deletions=[(0, 1)]))
        assert p.has_edge(1, 2)
        assert not p.has_edge(0, 1)
        assert_no_violations(p)


class TestInvariantsUnderChurn:
    @pytest.mark.parametrize("batch_size", [1, 7, 64, 1000])
    def test_invariants_after_insertions(self, batch_size):
        plds = build_plds(erdos_renyi(120, 500, seed=2), batch_size=batch_size)
        assert_no_violations(plds, f"batch={batch_size}")

    @pytest.mark.parametrize("batch_size", [1, 7, 64])
    def test_invariants_after_deletions(self, batch_size):
        edges = erdos_renyi(120, 500, seed=2)
        plds = build_plds(edges)
        for i in range(0, len(edges), batch_size):
            plds.update(Batch(deletions=edges[i : i + batch_size]))
            assert_no_violations(plds, f"after del batch at {i}")
        assert plds.num_edges == 0

    def test_invariants_random_mixed_churn(self):
        rng = random.Random(0)
        pool = erdos_renyi(80, 350, seed=4)
        plds = PLDS(n_hint=90)
        current: set = set()
        for step in range(25):
            available = [e for e in pool if e not in current]
            ins = rng.sample(available, min(20, len(available)))
            dels = rng.sample(sorted(current), min(10, len(current)))
            plds.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert_no_violations(plds, f"step {step}")
            assert not structure_matches_edges(plds, current)

    def test_structure_bookkeeping_matches_edges(self):
        edges = erdos_renyi(60, 250, seed=6)
        plds = build_plds(edges)
        assert not structure_matches_edges(plds, set(edges))


class TestCorenessApproximation:
    @pytest.mark.parametrize(
        "edges",
        [
            erdos_renyi(150, 700, seed=1),
            barabasi_albert(200, 5, seed=2),
            ring_of_cliques(8, 6),
            grid_2d(12, 12),
        ],
        ids=["er", "ba", "cliques", "grid"],
    )
    def test_estimates_within_factor_after_insertion(self, edges):
        plds = build_plds(edges, batch_size=97)
        exact = exact_coreness(edges)
        violations = approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )
        assert not violations, violations[:5]

    def test_estimates_within_factor_after_deletions(self):
        edges = erdos_renyi(150, 700, seed=1)
        plds = build_plds(edges)
        dels = edges[:350]
        plds.update(Batch(deletions=dels))
        exact = exact_coreness(edges[350:])
        violations = approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )
        assert not violations, violations[:5]

    def test_zero_degree_estimates_zero(self):
        plds = build_plds([(0, 1)])
        plds.update(Batch(deletions=[(0, 1)]))
        assert plds.coreness_estimate(0) == 0.0

    def test_batch_size_does_not_change_guarantee(self):
        edges = barabasi_albert(150, 4, seed=8)
        exact = exact_coreness(edges)
        for bs in (1, 10, len(edges)):
            plds = build_plds(edges, batch_size=bs)
            violations = approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            )
            assert not violations, (bs, violations[:3])

    def test_cycle_adversary(self):
        # The paper's Section-3 adversarial example: removing/re-adding an
        # edge of a cycle flips all coreness values between 1 and 2.
        n = 60
        cycle = [(i, (i + 1) % n) for i in range(n)]
        cycle = [(min(u, v), max(u, v)) for u, v in cycle]
        plds = build_plds(cycle)
        for _ in range(10):
            plds.update(Batch(deletions=[cycle[0]]))
            exact = exact_coreness(cycle[1:])
            assert not approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            )
            plds.update(Batch(insertions=[cycle[0]]))
            exact = exact_coreness(cycle)
            assert not approximation_violations(
                plds.coreness_estimates(), exact, plds.approximation_factor()
            )
            assert_no_violations(plds)

    def test_pldsopt_estimates_reasonable(self):
        edges = barabasi_albert(200, 5, seed=3)
        plds = build_plds(edges, group_shrink=50)
        exact = exact_coreness(edges)
        # PLDSOpt forfeits the formal proof; empirically its error stays
        # within the paper's observed range (max 3-6, Section 6.6).
        violations = approximation_violations(
            plds.coreness_estimates(), exact, factor=8.0
        )
        assert not violations, violations[:5]


class TestOrientation:
    def test_orient_low_to_high_level(self):
        plds = build_plds(erdos_renyi(100, 400, seed=5), track_orientation=True)
        for u, v in plds.edges():
            tail, head = plds.orientation_of(u, v)
            lt, lh = plds.level(tail), plds.level(head)
            assert lt < lh or (lt == lh and tail < head)

    def test_out_neighbors_consistent_with_orientation(self):
        plds = build_plds(erdos_renyi(80, 300, seed=5), track_orientation=True)
        for v in plds.vertices():
            for w in plds.out_neighbors(v):
                assert plds.orientation_of(v, w) == (v, w)

    def test_flips_reported_track_orientation_table(self):
        edges = erdos_renyi(80, 300, seed=5)
        plds = PLDS(n_hint=80, track_orientation=True)
        mirror: dict = {}
        rng = random.Random(1)
        order = list(edges)
        rng.shuffle(order)
        for i in range(0, len(order), 30):
            res = plds.update(Batch(insertions=order[i : i + 30]))
            for tail, head in res.oriented_insertions:
                mirror[(min(tail, head), max(tail, head))] = (tail, head)
            for tail, head in res.flipped:
                e = (min(tail, head), max(tail, head))
                assert mirror[e] == (tail, head), "flip reports stale direction"
                mirror[e] = (head, tail)
        # Mirror must now equal the live orientation.
        for u, v in plds.edges():
            assert mirror[(u, v)] == plds.orientation_of(u, v)

    def test_deletion_reports_pre_batch_orientation(self):
        plds = PLDS(n_hint=10, track_orientation=True)
        plds.update(Batch(insertions=[(0, 1), (1, 2), (0, 2)]))
        before = {e: plds.orientation_of(*e) for e in [(0, 1)]}
        res = plds.update(Batch(deletions=[(0, 1)]))
        assert res.oriented_deletions == [before[(0, 1)]]

    def test_moved_vertices_reported(self):
        plds = PLDS(n_hint=30, track_orientation=True)
        clique = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        res = plds.update(Batch(insertions=clique))
        assert res.moved_vertices  # a clique forces vertices off level 0


class TestVertexUpdates:
    def test_delete_vertex_removes_incident_edges(self):
        plds = PLDS(n_hint=10, track_orientation=True)
        plds.update(Batch(insertions=[(0, 1), (0, 2), (1, 2)]))
        plds.delete_vertices([0])
        assert not plds.has_edge(0, 1)
        assert plds.has_edge(1, 2)
        assert_no_violations(plds)

    def test_delete_adjacent_vertices(self):
        plds = PLDS(n_hint=10)
        plds.update(Batch(insertions=[(0, 1), (1, 2), (2, 3)]))
        plds.delete_vertices([1, 2])
        assert plds.num_edges == 0

    def test_rebuild_on_overflow(self):
        plds = PLDS(n_hint=4)
        edges = erdos_renyi(40, 100, seed=9)
        plds.update(Batch(insertions=edges))
        assert plds.n_hint >= 40
        assert_no_violations(plds)
        exact = exact_coreness(edges)
        assert not approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )


class TestMetering:
    def test_work_scales_with_batch(self):
        edges = erdos_renyi(100, 400, seed=2)
        small = build_plds(edges, batch_size=10)
        big = build_plds(edges, batch_size=400)
        # Same total updates; total work should be within a small factor.
        assert small.tracker.work < 20 * big.tracker.work
        assert big.tracker.work < 20 * small.tracker.work

    def test_depth_is_much_smaller_than_work(self):
        plds = build_plds(erdos_renyi(150, 700, seed=2), batch_size=700)
        assert plds.tracker.depth < plds.tracker.work / 5

    def test_space_accounting_positive_and_bounded(self):
        edges = erdos_renyi(100, 400, seed=2)
        plds = build_plds(edges)
        space = plds.space_bytes()
        assert space >= 8 * 2 * len(edges)
        assert space < 10_000 * len(edges)


class TestHeuristicParameters:
    def test_heuristic_coeff_reduces_error(self):
        # The paper's heuristic parameters replace (2+3/lambda) with 1.1
        # trading guarantees for empirically tighter estimates.
        edges = barabasi_albert(200, 5, seed=11)
        exact = exact_coreness(edges)

        def avg_error(plds):
            tot = cnt = 0
            for v, k in exact.items():
                if k == 0:
                    continue
                est = plds.coreness_estimate(v)
                tot += max(est / k, k / est)
                cnt += 1
            return tot / cnt

        normal = build_plds(edges)
        heuristic = build_plds(edges, upper_coeff=1.1)
        assert_no_violations(heuristic)
        assert avg_error(heuristic) <= avg_error(normal) + 0.2
