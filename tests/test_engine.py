"""Unit tests for the work-depth metering engine."""

from __future__ import annotations

import pytest

from repro.parallel.engine import Cost, WorkDepthTracker, parfor, parmap


class TestCost:
    def test_default_is_zero(self):
        assert Cost() == Cost(0, 0)

    def test_sequential_composition_adds_both(self):
        assert Cost(3, 2) + Cost(5, 7) == Cost(8, 9)

    def test_parallel_composition_sums_work_maxes_depth(self):
        assert Cost(3, 2) | Cost(5, 7) == Cost(8, 7)

    def test_parallel_composition_is_commutative(self):
        a, b = Cost(3, 9), Cost(4, 1)
        assert (a | b) == (b | a)

    def test_scaled(self):
        assert Cost(2, 3).scaled(4) == Cost(8, 12)

    def test_immutability(self):
        c = Cost(1, 1)
        with pytest.raises(AttributeError):
            c.work = 5  # type: ignore[misc]


class TestTrackerSequential:
    def test_starts_at_zero(self, tracker):
        assert tracker.work == 0
        assert tracker.depth == 0

    def test_add_accumulates(self, tracker):
        tracker.add(work=3, depth=2)
        tracker.add(work=4, depth=1)
        assert (tracker.work, tracker.depth) == (7, 3)

    def test_add_defaults_to_unit(self, tracker):
        tracker.add()
        assert (tracker.work, tracker.depth) == (1, 1)

    def test_add_cost(self, tracker):
        tracker.add_cost(Cost(5, 6))
        assert tracker.cost == Cost(5, 6)

    def test_reset(self, tracker):
        tracker.add(work=10, depth=10)
        tracker.reset()
        assert tracker.cost == Cost(0, 0)

    def test_snapshot_delta(self, tracker):
        tracker.add(work=5, depth=5)
        snap = tracker.snapshot()
        tracker.add(work=3, depth=2)
        assert tracker.delta(snap) == Cost(3, 2)


class TestTrackerParallel:
    def test_parallel_branches_max_depth(self, tracker):
        with tracker.parallel() as par:
            for d in (3, 7, 2):
                with par.branch():
                    tracker.add(work=10, depth=d)
        assert tracker.work == 30
        assert tracker.depth == 7

    def test_empty_parallel_scope_is_free(self, tracker):
        with tracker.parallel():
            pass
        assert tracker.cost == Cost(0, 0)

    def test_nested_parallel_scopes(self, tracker):
        # outer scope: two branches; one branch contains an inner parallel
        with tracker.parallel() as outer:
            with outer.branch():
                tracker.add(work=1, depth=1)
                with tracker.parallel() as inner:
                    for _ in range(4):
                        with inner.branch():
                            tracker.add(work=2, depth=5)
                # branch total: depth 1 + 5 = 6, work 1 + 8 = 9
            with outer.branch():
                tracker.add(work=100, depth=2)
        assert tracker.work == 109
        assert tracker.depth == 6

    def test_sequential_after_parallel_adds(self, tracker):
        with tracker.parallel() as par:
            with par.branch():
                tracker.add(work=1, depth=4)
        tracker.add(work=1, depth=3)
        assert tracker.depth == 7

    def test_parallel_then_parallel_compose_sequentially(self, tracker):
        for _ in range(2):
            with tracker.parallel() as par:
                with par.branch():
                    tracker.add(work=1, depth=5)
        assert tracker.depth == 10


class TestBranchExceptionSafety:
    def test_branch_pops_frame_on_exception(self, tracker):
        with pytest.raises(RuntimeError):
            with tracker.parallel() as par:
                with par.branch():
                    tracker.add(work=5, depth=5)
                    raise RuntimeError("boom")
        # The tracker must still be usable with a balanced stack.
        tracker.add(work=1, depth=1)
        assert tracker.depth >= 1

    def test_costs_before_exception_are_recorded(self, tracker):
        try:
            with tracker.parallel() as par:
                with par.branch():
                    tracker.add(work=7, depth=7)
                    raise ValueError
        except ValueError:
            pass
        # branch exit folded its frame before propagating
        assert tracker.work in (0, 7)  # scope exit may be skipped by the raise
        with tracker.parallel() as par:
            with par.branch():
                tracker.add(work=1, depth=1)
        assert tracker.work >= 1


class TestParforParmap:
    def test_parfor_costs(self, tracker):
        depths = [1, 9, 3]

        def body(d):
            tracker.add(work=d, depth=d)

        parfor(tracker, depths, body)
        assert tracker.work == 13
        assert tracker.depth == 9

    def test_parfor_executes_all(self, tracker):
        seen = []
        parfor(tracker, range(5), seen.append)
        assert seen == [0, 1, 2, 3, 4]

    def test_parmap_preserves_order(self, tracker):
        out = parmap(tracker, [3, 1, 2], lambda x: x * 10)
        assert out == [30, 10, 20]

    def test_parmap_empty(self, tracker):
        assert parmap(tracker, [], lambda x: x) == []

    def test_parfor_empty_adds_nothing(self, tracker):
        parfor(tracker, [], lambda x: tracker.add(work=99, depth=99))
        assert tracker.cost == Cost(0, 0)


class TestSnapshotDeltaScoping:
    """snapshot()/delta() read the *root* frame only — the contract span
    tracing (repro.obs.tracing) builds its reconciliation invariant on."""

    def test_delta_inside_open_branch_reads_zero(self, tracker):
        snap = tracker.snapshot()
        with tracker.parallel() as par:
            with par.branch():
                tracker.add(work=9, depth=4)
                # Charges live on the branch frame: not yet visible at root.
                assert tracker.delta(snap) == Cost(0, 0)
            # Folded into the scope, still not at root.
            assert tracker.delta(snap) == Cost(0, 0)
        # Scope closed: the combined cost lands on the root frame.
        assert tracker.delta(snap) == Cost(9, 4)

    def test_delta_across_nested_parallel_scopes(self, tracker):
        tracker.add(work=1, depth=1)
        snap = tracker.snapshot()
        with tracker.parallel() as outer:
            with outer.branch():
                with tracker.parallel() as inner:
                    for d in (2, 5):
                        with inner.branch():
                            tracker.add(work=3, depth=d)
                tracker.add(work=1, depth=1)
        # inner: work 6, depth 5; branch adds (1, 1) sequentially.
        assert tracker.delta(snap) == Cost(7, 6)
        assert tracker.snapshot() == Cost(8, 7)

    def test_delta_spanning_flat_parfor(self, tracker):
        snap = tracker.snapshot()
        tracker.flat_parfor([1, 4, 2], lambda d: tracker.add(work=d, depth=d))
        assert tracker.delta(snap) == Cost(7, 4)

    def test_sequential_snapshots_tile_the_run(self, tracker):
        """Back-to-back deltas sum to the total — no charge lost or doubled."""
        deltas = []
        for d in (3, 7, 2):
            snap = tracker.snapshot()
            with tracker.parallel() as par:
                with par.branch():
                    tracker.add(work=10, depth=d)
            deltas.append(tracker.delta(snap))
        total = Cost(0, 0)
        for c in deltas:
            total = total + c
        assert total == tracker.cost == Cost(30, 12)


class TestNullTracker:
    def test_charges_nothing(self):
        from repro.parallel.engine import NullTracker

        t = NullTracker()
        t.add(work=5, depth=5)
        t.add_cost(Cost(3, 3))
        t.charge_parfor(10, per_work=2, per_depth=2)
        with t.parallel() as par:
            with par.branch():
                t.add(work=9, depth=9)
        assert t.cost == Cost(0, 0)

    def test_snapshot_delta_stay_zero(self):
        from repro.parallel.engine import NullTracker

        t = NullTracker()
        snap = t.snapshot()
        t.add(work=5, depth=5)
        t.flat_parfor(range(4), lambda i: t.add())
        assert snap == Cost(0, 0)
        assert t.delta(snap) == Cost(0, 0)

    def test_flat_parfor_still_executes_body(self):
        from repro.parallel.engine import NullTracker

        seen = []
        NullTracker().flat_parfor(range(3), seen.append)
        assert seen == [0, 1, 2]
