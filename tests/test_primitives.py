"""Unit tests for the metered parallel primitives."""

from __future__ import annotations

import operator

import pytest

from repro.parallel.engine import WorkDepthTracker
from repro.parallel.primitives import (
    log2_ceil,
    parallel_count,
    parallel_filter,
    parallel_max,
    parallel_prefix_sum,
    parallel_reduce,
    parallel_semisort,
    parallel_sort,
)


class TestLog2Ceil:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10)],
    )
    def test_values(self, n, expected):
        assert log2_ceil(n) == expected


class TestReduce:
    def test_sum(self, tracker):
        assert parallel_reduce(tracker, [1, 2, 3, 4], operator.add, 0) == 10

    def test_identity_on_empty(self, tracker):
        assert parallel_reduce(tracker, [], operator.add, 42) == 42

    def test_charges_linear_work_log_depth(self, tracker):
        parallel_reduce(tracker, list(range(64)), operator.add, 0)
        assert tracker.work == 64
        assert tracker.depth == log2_ceil(64) + 1

    def test_max_reduce(self, tracker):
        assert parallel_max(tracker, [5, 2, 9, 1]) == 9

    def test_max_default(self, tracker):
        assert parallel_max(tracker, [], default=-1) == -1

    def test_count(self, tracker):
        assert parallel_count(tracker, range(10), lambda x: x % 2 == 0) == 5


class TestFilter:
    def test_keeps_order(self, tracker):
        out = parallel_filter(tracker, [5, 1, 4, 2, 3], lambda x: x > 2)
        assert out == [5, 4, 3]

    def test_empty(self, tracker):
        assert parallel_filter(tracker, [], lambda x: True) == []

    def test_all_filtered(self, tracker):
        assert parallel_filter(tracker, [1, 2], lambda x: False) == []


class TestPrefixSum:
    def test_exclusive_semantics(self, tracker):
        assert parallel_prefix_sum(tracker, [3, 1, 4, 1]) == [0, 3, 4, 8]

    def test_identity_offset(self, tracker):
        assert parallel_prefix_sum(tracker, [1, 1], identity=10) == [10, 11]

    def test_empty(self, tracker):
        assert parallel_prefix_sum(tracker, []) == []


class TestSort:
    def test_sorts(self, tracker):
        assert parallel_sort(tracker, [3, 1, 2]) == [1, 2, 3]

    def test_key(self, tracker):
        assert parallel_sort(tracker, ["bb", "a"], key=len) == ["a", "bb"]

    def test_charges_nlogn_work(self, tracker):
        parallel_sort(tracker, list(range(16)))
        assert tracker.work == 16 * 4

    def test_stability(self, tracker):
        pairs = [(1, "a"), (0, "b"), (1, "c")]
        out = parallel_sort(tracker, pairs, key=lambda p: p[0])
        assert out == [(0, "b"), (1, "a"), (1, "c")]


class TestSemisort:
    def test_groups_by_key(self, tracker):
        out = parallel_semisort(tracker, [("a", 1), ("b", 2), ("a", 3)])
        assert out == {"a": [1, 3], "b": [2]}

    def test_value_order_preserved_within_group(self, tracker):
        out = parallel_semisort(tracker, [(0, i) for i in range(5)])
        assert out[0] == [0, 1, 2, 3, 4]

    def test_empty(self, tracker):
        assert parallel_semisort(tracker, []) == {}

    def test_charges_linear(self, tracker):
        parallel_semisort(tracker, [(i % 3, i) for i in range(32)])
        assert tracker.work == 32
