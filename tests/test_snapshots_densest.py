"""Tests for PLDS snapshots and the densest-subgraph extension."""

from __future__ import annotations

import json
import random

import pytest

from repro.core.densest import charikar_peel, densest_subgraph_estimate
from repro.core.plds import PLDS
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    planted_clique,
    ring_of_cliques,
)
from repro.graphs.streams import Batch

from .conftest import assert_no_violations, build_plds


class TestSnapshots:
    def test_roundtrip_preserves_everything(self):
        plds = build_plds(
            erdos_renyi(60, 240, seed=1), track_orientation=True
        )
        snap = plds.to_snapshot()
        restored = PLDS.from_snapshot(snap)
        assert restored.coreness_estimates() == plds.coreness_estimates()
        assert sorted(restored.edges()) == sorted(plds.edges())
        assert {v: restored.level(v) for v in restored.vertices()} == {
            v: plds.level(v) for v in plds.vertices()
        }
        assert_no_violations(restored)

    def test_snapshot_is_json_serializable(self):
        plds = build_plds(erdos_renyi(30, 90, seed=2))
        text = json.dumps(plds.to_snapshot())
        restored = PLDS.from_snapshot(json.loads(text))
        assert restored.num_edges == 90

    def test_restored_structure_accepts_updates(self):
        edges = erdos_renyi(50, 180, seed=3)
        plds = build_plds(edges, track_orientation=True)
        restored = PLDS.from_snapshot(plds.to_snapshot())
        rng = random.Random(0)
        dels = rng.sample(edges, 60)
        restored.update(Batch(deletions=dels))
        assert_no_violations(restored)
        assert restored.num_edges == 120

    def test_orientation_restored(self):
        plds = build_plds(erdos_renyi(40, 150, seed=4), track_orientation=True)
        restored = PLDS.from_snapshot(plds.to_snapshot())
        for u, v in restored.edges():
            assert restored.orientation_of(u, v) == plds.orientation_of(u, v)

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError):
            PLDS.from_snapshot({"format": 99})

    def test_inconsistent_edge_rejected(self):
        plds = build_plds([(0, 1)])
        snap = plds.to_snapshot()
        snap["edges"].append((7, 8))
        with pytest.raises(ValueError):
            PLDS.from_snapshot(snap)

    def test_out_of_range_level_rejected(self):
        plds = build_plds([(0, 1)])
        snap = plds.to_snapshot()
        snap["levels"][0][1] = 10**9
        with pytest.raises(ValueError):
            PLDS.from_snapshot(snap)

    def test_isolated_vertices_survive(self):
        plds = PLDS(n_hint=10)
        plds.insert_vertices([3, 7])
        restored = PLDS.from_snapshot(plds.to_snapshot())
        assert restored.num_vertices == 2
        assert restored.coreness_estimate(3) == 0.0


class TestCharikarPeel:
    def test_clique_is_its_own_densest(self):
        clique = [(i, j) for i in range(8) for j in range(i + 1, 8)]
        density, vs = charikar_peel(clique)
        assert density == pytest.approx(28 / 8)
        assert vs == set(range(8))

    def test_planted_clique_found(self):
        edges = planted_clique(100, 120, 10, seed=1)
        density, vs = charikar_peel(edges)
        assert density >= (10 * 9 / 2) / 10 / 2  # >= rho*/2 >= clique/2
        assert set(range(10)) & vs  # witness overlaps the plant

    def test_empty(self):
        assert charikar_peel([]) == (0.0, set())

    def test_single_edge(self):
        density, vs = charikar_peel([(0, 1)])
        assert density == pytest.approx(0.5)
        assert vs == {0, 1}


class TestDensestEstimate:
    @pytest.mark.parametrize(
        "edges",
        [
            erdos_renyi(120, 600, seed=5),
            barabasi_albert(150, 5, seed=6),
            ring_of_cliques(6, 7),
            planted_clique(80, 100, 12, seed=7),
        ],
        ids=["er", "ba", "cliques", "planted"],
    )
    def test_within_analysis_factor(self, edges):
        plds = build_plds(edges)
        est, witness = densest_subgraph_estimate(plds)
        greedy, _ = charikar_peel(edges)
        # greedy <= rho* <= 2*greedy and est in [rho*/(2(2+eps)), (2+eps)rho*]
        factor = plds.approximation_factor()
        rho_low, rho_high = greedy, 2 * greedy
        assert est >= rho_low / (2 * factor) - 1e-9
        assert est <= factor * rho_high + 1e-9
        assert witness

    def test_empty_structure(self):
        plds = PLDS(n_hint=10)
        assert densest_subgraph_estimate(plds) == (0.0, set())

    def test_witness_in_top_group(self):
        edges = planted_clique(60, 80, 10, seed=8)
        plds = build_plds(edges)
        est, witness = densest_subgraph_estimate(plds)
        top = max(plds.coreness_estimate(v) for v in plds.vertices())
        assert all(plds.coreness_estimate(v) == top for v in witness)
