"""Tests for the benchmark harness and metrics."""

from __future__ import annotations

import pytest

from repro.bench.harness import (
    ALGORITHM_KEYS,
    make_adapter,
    run_protocol,
)
from repro.bench.metrics import error_stats
from repro.graphs.generators import barabasi_albert

EDGES = barabasi_albert(100, 3, seed=1)


class TestErrorStats:
    def test_perfect_estimates(self):
        stats = error_stats({1: 3.0, 2: 5.0}, {1: 3, 2: 5})
        assert stats.average == 1.0
        assert stats.maximum == 1.0
        assert stats.vertices_measured == 2

    def test_overestimate_and_underestimate_symmetric(self):
        assert error_stats({1: 6.0}, {1: 3}).maximum == 2.0
        assert error_stats({1: 1.5}, {1: 3}).maximum == 2.0

    def test_zero_core_skipped(self):
        stats = error_stats({1: 0.0}, {1: 0})
        assert stats.vertices_measured == 0

    def test_missing_estimate_is_infinite(self):
        stats = error_stats({}, {1: 2})
        assert stats.maximum == float("inf")

    def test_empty(self):
        stats = error_stats({}, {})
        assert stats.average == 1.0


class TestAdapters:
    @pytest.mark.parametrize("key", ALGORITHM_KEYS)
    def test_adapter_roundtrip(self, key):
        adapter = make_adapter(key, n_hint=110)
        adapter.initialize(EDGES[:100])
        from repro.graphs.streams import Batch

        adapter.update(Batch(insertions=EDGES[100:150]))
        est = adapter.estimates()
        assert est
        assert adapter.cost.work > 0
        assert adapter.space_bytes() > 0

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            make_adapter("nope", n_hint=10)

    def test_exact_flags(self):
        assert make_adapter("zhang", n_hint=10).is_exact
        assert make_adapter("exactkcore", n_hint=10).is_exact
        assert not make_adapter("plds", n_hint=10).is_exact
        assert not make_adapter("approxkcore", n_hint=10).is_exact

    @pytest.mark.parametrize("key", ["exactkcore", "approxkcore"])
    def test_static_rerun_adapters(self, key):
        from repro.graphs.streams import Batch

        adapter = make_adapter(key, n_hint=110)
        adapter.initialize(EDGES[:100])
        work_after_init = adapter.cost.work
        adapter.update(Batch(insertions=EDGES[100:150], deletions=EDGES[:20]))
        assert adapter.cost.work > work_after_init  # full recompute charged
        est = adapter.estimates()
        assert est
        if key == "exactkcore":
            from repro.static_kcore.exact import exact_coreness

            expected = exact_coreness(EDGES[20:150])
            assert est == {v: float(k) for v, k in expected.items()}


class TestRunProtocol:
    def test_ins_protocol(self):
        res = run_protocol(
            lambda: make_adapter("pldsopt", 110), EDGES, "ins", batch_size=60
        )
        assert res.protocol == "ins"
        assert len(res.batches) == -(-len(EDGES) // 60)
        assert res.errors is not None
        assert res.errors.maximum < float("inf")

    def test_del_protocol_empties_graph(self):
        res = run_protocol(
            lambda: make_adapter("pldsopt", 110), EDGES, "del", batch_size=60
        )
        assert sum(b.batch_size for b in res.batches) == len(EDGES)

    def test_mix_protocol_single_batch(self):
        res = run_protocol(
            lambda: make_adapter("pldsopt", 110), EDGES, "mix", batch_size=40
        )
        assert len(res.batches) == 1
        assert res.errors is not None

    def test_exact_algorithm_has_unit_error(self):
        res = run_protocol(
            lambda: make_adapter("zhang", 110), EDGES, "ins", batch_size=100
        )
        assert res.errors.maximum == 1.0

    def test_max_batches_truncation(self):
        res = run_protocol(
            lambda: make_adapter("pldsopt", 110),
            EDGES,
            "ins",
            batch_size=50,
            max_batches=2,
        )
        assert len(res.batches) == 2
        assert res.errors is not None

    def test_avg_properties(self):
        res = run_protocol(
            lambda: make_adapter("pldsopt", 110), EDGES, "ins", batch_size=60
        )
        assert res.avg_work > 0
        assert res.avg_depth > 0
        assert res.avg_wall >= 0
        assert res.total_cost.work == sum(b.work for b in res.batches)

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            run_protocol(
                lambda: make_adapter("pldsopt", 110), EDGES, "nope", 10
            )

    def test_measure_error_against_override(self):
        # errors measured against a caller-provided reference graph
        res = run_protocol(
            lambda: make_adapter("zhang", 110),
            EDGES,
            "ins",
            batch_size=len(EDGES),
            measure_error_against=EDGES,
        )
        assert res.errors.maximum == 1.0

    def test_del_protocol_reports_halfway_errors(self):
        res = run_protocol(
            lambda: make_adapter("zhang", 110), EDGES, "del", batch_size=60
        )
        # exact algorithm: halfway snapshot against halfway graph is exact
        assert res.errors is not None
        assert res.errors.maximum == 1.0
