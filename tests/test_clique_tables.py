"""Tests for the table-hierarchy k-clique counter (Algorithms 12-13)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.framework import create_clique_driver, create_clique_tables_driver
from repro.graphs.generators import erdos_renyi, planted_clique, ring_of_cliques
from repro.graphs.streams import Batch


def nx_clique_count(edges, k):
    G = nx.Graph(list(edges))
    if k == 2:
        return G.number_of_edges()
    return sum(1 for c in nx.enumerate_all_cliques(G) if len(c) == k)


class TestBasics:
    def test_single_triangle(self):
        driver, c = create_clique_tables_driver(n_hint=10, k=3)
        driver.update(Batch(insertions=[(0, 1), (1, 2)]))
        assert c.count == 0
        driver.update(Batch(insertions=[(0, 2)]))
        assert c.count == 1
        driver.update(Batch(deletions=[(0, 2)]))
        assert c.count == 0

    def test_k4_in_one_batch(self):
        driver, c = create_clique_tables_driver(n_hint=10, k=4)
        k5 = [(i, j) for i in range(5) for j in range(i + 1, 5)]
        driver.update(Batch(insertions=k5))
        assert c.count == 5  # C(5,4)

    def test_k2_counts_edges(self):
        driver, c = create_clique_tables_driver(n_hint=10, k=2)
        driver.update(Batch(insertions=[(0, 1), (2, 3)]))
        assert c.count == 2
        driver.update(Batch(deletions=[(0, 1)]))
        assert c.count == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            create_clique_tables_driver(n_hint=10, k=1)

    def test_k5_ring_of_cliques(self):
        driver, c = create_clique_tables_driver(n_hint=30, k=5)
        driver.update(Batch(insertions=ring_of_cliques(4, 6)))
        assert c.count == 4 * 6  # C(6,5) per clique


class TestChurnExactness:
    @pytest.mark.parametrize("k,seed", [(3, 1), (4, 2), (5, 3)])
    def test_exact_under_churn(self, k, seed):
        rng = random.Random(seed)
        pool = planted_clique(35, 120, 8, seed=seed)
        driver, c = create_clique_tables_driver(n_hint=45, k=k)
        current: set = set()
        for step in range(10):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(20, len(avail)))
            dels = rng.sample(sorted(current), min(10, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            assert c.count == nx_clique_count(current, k), (k, step)

    @pytest.mark.parametrize("k", [3, 4])
    def test_tables_match_rebuild(self, k):
        rng = random.Random(4)
        pool = erdos_renyi(30, 160, seed=4)
        driver, c = create_clique_tables_driver(n_hint=40, k=k)
        current: set = set()
        for step in range(8):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(25, len(avail)))
            dels = rng.sample(sorted(current), min(12, len(current)))
            driver.update(Batch(insertions=ins, deletions=dels))
            current |= set(ins)
            current -= set(dels)
            ref = c.rebuild_tables_reference()
            for j in c._tables:
                assert c._tables[j] == ref[j], (k, step, j)

    def test_flip_heavy_growth(self):
        # growing a clique causes many orientation flips
        driver, c = create_clique_tables_driver(n_hint=20, k=4)
        n = 10
        all_edges = [(i, j) for i in range(n) for j in range(i + 1, n)]
        rng = random.Random(5)
        rng.shuffle(all_edges)
        current: set = set()
        for i in range(0, len(all_edges), 8):
            batch = all_edges[i : i + 8]
            driver.update(Batch(insertions=batch))
            current |= set(batch)
            assert c.count == nx_clique_count(current, 4)
        rng.shuffle(all_edges)
        for i in range(0, len(all_edges), 8):
            batch = all_edges[i : i + 8]
            driver.update(Batch(deletions=batch))
            current -= set(batch)
            assert c.count == nx_clique_count(current, 4)


class TestVariantAgreement:
    @pytest.mark.parametrize("k", [3, 4])
    def test_matches_enumeration_variant(self, k):
        rng = random.Random(6)
        pool = erdos_renyi(30, 150, seed=6)
        d1, tables = create_clique_tables_driver(n_hint=40, k=k)
        d2, enum = create_clique_driver(n_hint=40, k=k)
        current: set = set()
        for step in range(8):
            avail = [e for e in pool if e not in current]
            ins = rng.sample(avail, min(20, len(avail)))
            dels = rng.sample(sorted(current), min(10, len(current)))
            batch1 = Batch(insertions=list(ins), deletions=list(dels))
            batch2 = Batch(insertions=list(ins), deletions=list(dels))
            d1.update(batch1)
            d2.update(batch2)
            current |= set(ins)
            current -= set(dels)
            assert tables.count == enum.count, (k, step)

    def test_space_positive(self):
        driver, c = create_clique_tables_driver(n_hint=10, k=4)
        driver.update(Batch(insertions=[(0, 1), (0, 2), (1, 2)]))
        assert c.space_bytes() > 0
