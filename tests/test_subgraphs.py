"""Tests for k-core extraction and the coreness hierarchy."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.static_kcore.exact import exact_coreness
from repro.static_kcore.subgraphs import (
    approx_k_core_candidates,
    core_hierarchy,
    k_core_subgraph,
)
from repro.graphs.generators import (
    barabasi_albert,
    erdos_renyi,
    planted_clique,
    ring_of_cliques,
)

from .conftest import build_plds


class TestKCoreSubgraph:
    @pytest.mark.parametrize("k", [1, 2, 3, 5])
    def test_matches_networkx(self, k):
        edges = erdos_renyi(100, 500, seed=1)
        vs, kept = k_core_subgraph(edges, k)
        nx_core = nx.k_core(nx.Graph(edges), k)
        assert vs == set(nx_core.nodes)
        assert len(kept) == nx_core.number_of_edges()

    def test_min_degree_property(self):
        edges = barabasi_albert(150, 4, seed=2)
        vs, kept = k_core_subgraph(edges, 3)
        deg: dict[int, int] = {}
        for u, v in kept:
            deg[u] = deg.get(u, 0) + 1
            deg[v] = deg.get(v, 0) + 1
        assert all(d >= 3 for d in deg.values())

    def test_too_large_k_empty(self):
        vs, kept = k_core_subgraph([(0, 1)], 5)
        assert vs == set()
        assert kept == []


class TestApproxCandidates:
    def test_contains_true_core(self):
        edges = planted_clique(100, 150, 12, seed=3)
        plds = build_plds(edges)
        exact = exact_coreness(edges)
        for k in (2, 5, 11):
            candidates = approx_k_core_candidates(plds, k)
            true_core = {v for v, c in exact.items() if c >= k}
            assert true_core <= candidates, k

    def test_selectivity(self):
        # the candidate filter should exclude clearly-low vertices
        edges = planted_clique(200, 250, 12, seed=4)
        plds = build_plds(edges)
        candidates = approx_k_core_candidates(plds, 11)
        assert len(candidates) < plds.num_vertices / 2

    def test_invalid_k(self):
        plds = build_plds([(0, 1)])
        with pytest.raises(ValueError):
            approx_k_core_candidates(plds, 0)


class TestCoreHierarchy:
    def test_ring_of_cliques_is_single_flat_component(self):
        # every vertex has coreness 5 and the ring connects the cliques,
        # so the hierarchy is one flat component at k=5.
        edges = ring_of_cliques(5, 6)
        roots = core_hierarchy(edges)
        assert len(roots) == 1
        assert roots[0].k == 5
        assert len(roots[0].vertices) == 30
        assert roots[0].children == []

    def test_planted_clique_hierarchy(self):
        # sparse background + a dense plant: the deepest nested component
        # is exactly the planted clique.
        edges = planted_clique(120, 150, 10, seed=9)
        roots = core_hierarchy(edges)
        deepest = None
        stack = list(roots)
        while stack:
            node = stack.pop()
            if not node.children:
                if deepest is None or node.k > deepest.k:
                    deepest = node
            stack.extend(node.children)
        assert deepest is not None
        assert deepest.k == 9
        assert set(range(10)) <= set(deepest.vertices)

    def test_nesting_is_proper(self):
        edges = barabasi_albert(120, 4, seed=5)
        roots = core_hierarchy(edges)

        def walk(comp):
            for child in comp.children:
                assert child.vertices <= comp.vertices
                assert child.k > comp.k
                walk(child)

        for r in roots:
            walk(r)

    def test_components_partition_each_level(self):
        edges = erdos_renyi(80, 200, seed=6)
        roots = core_hierarchy(edges)
        level_vertices: dict[int, set[int]] = {}

        def walk(comp):
            level_vertices.setdefault(comp.k, set()).update(comp.vertices)
            for child in comp.children:
                walk(child)

        for r in roots:
            walk(r)
        core = exact_coreness(edges)
        for k, vs in level_vertices.items():
            assert vs == {v for v, c in core.items() if c >= k}

    def test_empty_graph(self):
        assert core_hierarchy([]) == []

    def test_custom_coreness_accepted(self):
        edges = [(0, 1), (1, 2), (0, 2)]
        plds = build_plds(edges)
        ests = {v: int(round(e)) for v, e in plds.coreness_estimates().items()}
        roots = core_hierarchy(edges, coreness=ests)
        assert roots
