"""Adversarial-workload tests: the paper's worst cases, end to end."""

from __future__ import annotations

import pytest

from repro.baselines.zhang import ZhangExactDynamic
from repro.core.invariants import approximation_violations
from repro.core.plds import PLDS
from repro.graphs.adversarial import (
    cascade_chain,
    clique_pulse,
    cycle_toggle,
    star_pulse,
)
from repro.graphs.dynamic_graph import DynamicGraph
from repro.static_kcore.exact import exact_coreness


def _drive(initial, batches, **plds_kwargs):
    n_hint = max((max(e) for e in initial), default=1) + 2
    plds = PLDS(n_hint=n_hint, **plds_kwargs)
    graph = DynamicGraph(initial)
    plds.insert_edges(initial)
    for b in batches:
        plds.update(b)
        for e in b.insertions:
            graph.insert_edge(*e)
        for e in b.deletions:
            graph.delete_edge(*e)
        probs = plds.check_invariants()
        assert not probs, probs[:3]
        exact = exact_coreness(list(graph.edges()), vertices=graph.vertices())
        bad = approximation_violations(
            plds.coreness_estimates(), exact, plds.approximation_factor()
        )
        assert not bad, bad[:3]
    return plds, graph


class TestGenerators:
    def test_cycle_toggle_shape(self):
        initial, batches = cycle_toggle(10, 3)
        assert len(initial) == 10
        assert len(batches) == 6

    def test_cascade_chain_shape(self):
        initial, batches = cascade_chain(5, 2)
        assert len(batches) == 4
        # 5 triangles sharing vertices -> 11 vertices, 15 edges minus merges
        assert len(initial) == 15

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            cycle_toggle(2, 1)
        with pytest.raises(ValueError):
            cascade_chain(0, 1)
        with pytest.raises(ValueError):
            clique_pulse(2, 1)
        with pytest.raises(ValueError):
            star_pulse(0, 1)


class TestPLDSUnderAdversary:
    def test_cycle_toggle_stays_bounded(self):
        initial, batches = cycle_toggle(40, 8)
        plds, _ = _drive(initial, batches)
        # after the last re-insertion the cycle's cores are all 2
        for v in range(40):
            assert plds.coreness_estimate(v) >= 2 / plds.approximation_factor()

    def test_cycle_toggle_amortized_work_constant(self):
        # Theorem 3.1's punchline: PLDS work per toggle is polylog even
        # though every toggle changes Theta(n) exact coreness values.
        results = {}
        for n in (50, 200):
            initial, batches = cycle_toggle(n, 5)
            plds, _ = _drive(initial, batches)
            snap = plds.tracker.work
            plds2, _ = _drive(initial, [])
            build = plds2.tracker.work
            results[n] = (snap - build) / len(batches)
        # 4x larger cycle must not cost ~4x more per toggle.
        assert results[200] < results[50] * 3

    def test_exact_baseline_pays_linear_on_cycle(self):
        # the contrast: exact maintenance touches the whole cycle.
        initial, batches = cycle_toggle(200, 2)
        z = ZhangExactDynamic()
        z.initialize(initial)
        before = z.tracker.work
        for b in batches:
            z.update(b)
        per_toggle = (z.tracker.work - before) / len(batches)
        assert per_toggle > 200  # Omega(n) per toggle

    def test_cascade_chain(self):
        initial, batches = cascade_chain(12, 4)
        _drive(initial, batches)

    def test_clique_pulse(self):
        initial, batches = clique_pulse(10, 3)
        _drive(initial, batches)

    def test_clique_pulse_jump_strategy(self):
        initial, batches = clique_pulse(10, 3)
        _drive(initial, batches, insertion_strategy="jump")

    def test_star_pulse(self):
        initial, batches = star_pulse(60, 4)
        plds, _ = _drive(initial, batches)
        # hub has coreness 1; estimate must not explode with its degree
        assert plds.coreness_estimate(0) <= plds.approximation_factor()

    def test_pldsopt_under_adversary(self):
        initial, batches = cycle_toggle(60, 5)
        n_hint = 62
        plds = PLDS(n_hint=n_hint, group_shrink=50)
        plds.insert_edges(initial)
        for b in batches:
            plds.update(b)
            assert not plds.check_invariants()
