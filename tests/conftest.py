"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.plds import PLDS
from repro.graphs.streams import Batch


@pytest.fixture
def tracker():
    from repro.parallel.engine import WorkDepthTracker

    return WorkDepthTracker()


def build_plds(edges, batch_size=64, n_hint=None, shuffle_seed=None, **kwargs):
    """Construct a PLDS by inserting ``edges`` in batches."""
    edges = list(edges)
    if shuffle_seed is not None:
        random.Random(shuffle_seed).shuffle(edges)
    if n_hint is None:
        n_hint = max((max(e) for e in edges), default=1) + 1
    plds = PLDS(n_hint=n_hint, **kwargs)
    for i in range(0, len(edges), batch_size):
        plds.update(Batch(insertions=edges[i : i + batch_size]))
    return plds


def assert_no_violations(structure, context=""):
    problems = structure.check_invariants()
    assert not problems, f"{context}: {problems[:5]}"
