"""MVCC read-path tests: epoch snapshots, wait-free readers, staleness.

The serving layer claims its readers are *wait-free*: every query is
answered from the last published epoch snapshot — a committed-prefix
state — without blocking on (or observing) an in-flight ``apply_batch``,
a rollback/retry, or a degradation rebuild, and never trailing the write
head by more than the one in-flight batch.

These tests pin that claim with a linearizability-style checker: a
:class:`~repro.bench.chaos.ReadProbePlan` issues a read at *every*
faultpoint traversal of a journaled run (mid-cascade, mid-rollback,
mid-rebuild — every place the stack can crash is a place a reader can
interleave) and each probed read must equal the coreness map of a
fault-free serial run at the exact batch prefix the read claims to
serve.
"""

import pytest

from repro import faults
from repro.bench.chaos import (
    ReadProbePlan,
    chaos_workload,
    probe_consistent,
    run_chaos,
)
from repro.graphs.generators import barabasi_albert
from repro.graphs.streams import Batch, insertion_batches
from repro.service import AuditPolicy, CoreService, ReadResult, RetryPolicy

pytestmark = pytest.mark.mvcc

EDGES = barabasi_albert(60, 3, seed=2)

#: Engines with copy-on-write epoch publication (``async_reads`` in the
#: registry) plus representatives of the full-sweep fallback path.
QUERYVIEW_ALGOS = ("plds", "pldsopt", "pldsflat", "pldsflatopt", "plds-sharded")
FALLBACK_ALGOS = ("lds", "sun", "zhang")


def _references(batches, algorithm: str, n_hint: int) -> list[dict]:
    """Coreness map of a fault-free serial run after each batch prefix."""
    svc = CoreService(algorithm, n_hint=n_hint)
    refs = [{}]
    for batch in batches:
        svc.apply_batch(batch)
        refs.append(dict(svc.coreness_map()))
    return refs


# ---------------------------------------------------------------------------
# Reader correctness between batches (all engine families)
# ---------------------------------------------------------------------------


class TestReaderBetweenBatches:
    @pytest.mark.parametrize("algorithm", QUERYVIEW_ALGOS + FALLBACK_ALGOS)
    def test_reader_matches_service_queries(self, algorithm):
        svc = CoreService(algorithm, n_hint=128)
        reader = svc.reader()
        last_epoch = reader.epoch
        for batch in insertion_batches(EDGES, 60, seed=3):
            svc.apply_batch(batch)
            assert reader.epoch > last_epoch  # publication per commit
            last_epoch = reader.epoch
            r = reader.coreness_map()
            assert isinstance(r, ReadResult)
            assert r.value == svc.coreness_map()
            assert r.staleness == 0 and not r.degraded
            assert r.epoch == reader.epoch
            v = max(r.value, key=r.value.get)
            assert reader.coreness(v).value == svc.coreness(v)
            assert reader.core_members(1.0).value == svc.core_members(1.0)
            # Edge-list order may differ between the frozen view and the
            # live mirror; the subgraph is equal as sets.
            rv, re = reader.core_subgraph(2).value
            sv, se = svc.core_subgraph(2)
            assert rv == sv and set(re) == set(se)

    def test_reader_densest_estimate_matches_snapshot(self):
        svc = CoreService("pldsopt", n_hint=128)
        svc.apply_batch(Batch(insertions=EDGES))
        got = svc.reader().densest_estimate().value
        assert got == svc.snapshot().densest_estimate()

    def test_view_is_immutable_and_stable_across_batches(self):
        svc = CoreService("pldsopt", n_hint=128)
        batches = insertion_batches(EDGES, 60, seed=3)
        svc.apply_batch(batches[0])
        view = svc.reader().view
        frozen = dict(view.estimates)
        with pytest.raises(TypeError):
            view.estimates[0] = 99.0  # mappingproxy: no writes
        for batch in batches[1:]:
            svc.apply_batch(batch)
        # The old epoch still answers exactly as it did when published.
        assert dict(view.estimates) == frozen


# ---------------------------------------------------------------------------
# The linearizability checker: reads interleaved at every faultpoint
# ---------------------------------------------------------------------------


class TestPrefixConsistency:
    @pytest.mark.parametrize(
        "algorithm", ("pldsopt", "pldsflat", "plds-sharded")
    )
    def test_mid_batch_reads_serve_committed_prefix(self, algorithm):
        batches = chaos_workload(60, 25, seed=1)
        refs = _references(batches, algorithm, n_hint=61)
        plan = ReadProbePlan()  # no armed points: probe every traversal
        svc = CoreService(algorithm, n_hint=61)
        plan.bind(svc)
        with faults.active(plan):
            for batch in batches:
                svc.apply_batch(batch)
        assert plan.probes, "workload traversed no faultpoints"
        assert all(probe_consistent(p, refs) for p in plan.probes)
        # Mid-apply reads trail the head by exactly the in-flight batch.
        assert {p.staleness for p in plan.probes} == {1}
        epochs = [p.epoch for p in plan.probes]
        assert epochs == sorted(epochs)  # reads never go back in time

    @pytest.mark.faults
    def test_chaos_trials_with_readers_armed(self):
        report = run_chaos(
            vertices=60, batch_size=25, trials=3, seed=0, trace=True
        )
        assert report.ok
        for trial in report.trials:
            assert trial.fired and trial.parity
            assert trial.reads_probed > 0
            assert trial.reads_consistent == trial.reads_probed
            assert trial.max_read_staleness <= 1
            row = trial.to_json_dict()
            assert row["reads_probed"] == trial.reads_probed
            assert row["reads_consistent"] == trial.reads_consistent

    @pytest.mark.faults
    def test_mid_rollback_reads_serve_last_committed_epoch(self):
        svc = CoreService(
            "pldsopt", n_hint=128, retry=RetryPolicy(max_attempts=3)
        )
        batches = insertion_batches(EDGES, 40, seed=5)
        svc.apply_batch(batches[0])
        committed = dict(svc.coreness_map())
        epoch = svc.reader().epoch
        plan = ReadProbePlan([faults.FaultPoint("service.apply", 1)])
        plan.bind(svc)
        with faults.active(plan):
            t = svc.apply_batch(batches[1])
        assert t.rolled_back and plan.fired
        # Every read interleaved with the failed attempt, the rollback,
        # and the retry served the pre-batch committed epoch.
        mid = [p for p in plan.probes if p.epoch == epoch]
        assert mid and all(dict(p.estimates) == committed for p in mid)
        assert all(p.staleness == 1 for p in mid)
        assert svc.reader().epoch > epoch  # retry committed and published


# ---------------------------------------------------------------------------
# Reads during degradation (quarantine + rebuild)
# ---------------------------------------------------------------------------


def _corrupt(svc: CoreService) -> None:
    """Desynchronize the engine from the mirror behind the service's back."""
    svc._adapter.update(Batch(insertions=[(900, 901)]))


class TestReadsDuringDegradation:
    @pytest.mark.faults
    @pytest.mark.parametrize("algorithm", QUERYVIEW_ALGOS)
    def test_mid_rebuild_reads_serve_committed_epoch(self, algorithm):
        svc = CoreService(algorithm, n_hint=1024, audit=AuditPolicy("every"))
        svc.apply_batch(Batch(insertions=EDGES[:60]))
        pre_epoch = svc.reader().epoch
        _corrupt(svc)
        plan = ReadProbePlan()
        plan.bind(svc)
        with faults.active(plan):
            t = svc.apply_batch(Batch(insertions=EDGES[60:90]))
        assert t.degraded and svc.degraded
        during = [p for p in plan.probes if p.degraded]
        assert during, "rebuild traversed no faultpoints"
        # Mid-quarantine/rebuild reads all served the epoch published at
        # the batch's commit — never a half-rebuilt state — and reported
        # the live degraded flag before the degraded epoch existed.
        assert {p.epoch for p in during} == {t.read_epoch}
        assert all(p.staleness <= 1 for p in during)
        # Reads before the commit served the pre-batch epoch, undegraded.
        before = [p for p in plan.probes if not p.degraded]
        assert all(p.epoch == pre_epoch for p in before)
        # The rebuild republished: readers now see the healthy state.
        reader = svc.reader()
        assert reader.epoch > t.read_epoch
        assert reader.degraded and reader.view.degraded
        assert reader.coreness_map().value == svc.coreness_map()

    @pytest.mark.faults
    @pytest.mark.parametrize("algorithm", ("lds",) + QUERYVIEW_ALGOS)
    def test_degraded_service_republishes_for_readers(self, algorithm):
        svc = CoreService(algorithm, n_hint=1024, audit=AuditPolicy("every"))
        svc.apply_batch(Batch(insertions=EDGES[:60]))
        _corrupt(svc)
        t = svc.apply_batch(Batch(insertions=EDGES[60:90]))
        assert t.degraded
        reader = svc.reader()
        assert reader.epoch > t.read_epoch
        assert reader.degraded
        assert reader.coreness_map().value == svc.coreness_map()
        assert reader.staleness == 0
        # Subsequent batches keep publishing fresh epochs while degraded.
        before = reader.epoch
        svc.apply_batch(Batch(insertions=EDGES[90:100]))
        assert reader.epoch > before
        assert reader.coreness_map().value == svc.coreness_map()


# ---------------------------------------------------------------------------
# Epoch monotonicity across snapshot/restore and journal recovery
# ---------------------------------------------------------------------------


class TestEpochMonotonicity:
    def test_restore_never_rewinds_the_epoch(self):
        svc = CoreService("pldsopt", n_hint=128)
        batches = insertion_batches(EDGES, 40, seed=9)
        svc.apply_batch(batches[0])
        snap = svc.snapshot()
        assert snap.read_epoch == svc.read_epoch
        svc.apply_batch(batches[1])
        epoch = svc.reader().epoch
        svc.restore(snap)
        reader = svc.reader()
        assert reader.epoch > epoch  # restore publishes a *newer* epoch
        assert reader.coreness_map().value == snap.coreness_map()
        assert reader.staleness == 0

    def test_from_journal_resumes_monotone_epochs(self):
        svc = CoreService("pldsopt", n_hint=128)
        for batch in insertion_batches(EDGES, 40, seed=9):
            svc.apply_batch(batch)
        recovered = CoreService.from_journal(
            svc.journal,
            "pldsopt",
            n_hint=128,
            epoch_start=svc.read_epoch,
        )
        # The recovered service's first published epoch is strictly newer
        # than anything the crashed incarnation handed out.
        assert recovered.reader().epoch > svc.read_epoch
        assert recovered.reader().coreness_map().value == svc.coreness_map()

    def test_epoch_start_validation(self):
        with pytest.raises(ValueError, match="epoch_start"):
            CoreService("plds", n_hint=16, epoch_start=-1)
