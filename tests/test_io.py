"""Unit tests for edge-list IO."""

from __future__ import annotations

import pytest

from repro.graphs.io import read_edge_list, write_edge_list


class TestReadEdgeList:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "g.txt"
        edges = [(0, 1), (1, 2), (0, 5)]
        write_edge_list(path, edges)
        assert read_edge_list(path) == edges

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# SNAP comment\n% matrix comment\n1 2\n")
        assert read_edge_list(path) == [(1, 2)]

    def test_self_loops_dropped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("3 3\n1 2\n")
        assert read_edge_list(path) == [(1, 2)]

    def test_duplicates_and_reverses_deduped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("1 2\n2 1\n1 2\n")
        assert read_edge_list(path) == [(1, 2)]

    def test_canonicalizes(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("9 4\n")
        assert read_edge_list(path) == [(4, 9)]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("\n1 2\n\n")
        assert read_edge_list(path) == [(1, 2)]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("42\n")
        with pytest.raises(ValueError):
            read_edge_list(path)

    def test_extra_columns_tolerated(self, tmp_path):
        # SNAP temporal files carry a timestamp third column.
        path = tmp_path / "g.txt"
        path.write_text("1 2 1093939\n")
        assert read_edge_list(path) == [(1, 2)]
